"""Tests for the cache model and post-LLC trace filtering."""

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.cache.hierarchy import CacheHierarchy, filter_trace
from repro.dram.commands import OpType


class TestCacheConfig:
    def test_sets(self):
        assert CacheConfig("L1", 512, 2).sets == 256

    def test_rejects_uneven_ways(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 10, 3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 0, 1)


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        c = Cache(CacheConfig("t", 16, 4))
        assert not c.access(5, False).hit
        assert c.access(5, False).hit

    def test_lru_eviction(self):
        c = Cache(CacheConfig("t", 4, 4))  # one set
        for line in range(4):
            c.access(line, False)
        c.access(0, False)          # refresh line 0
        c.access(99, False)         # evicts line 1 (LRU)
        assert c.contains(0)
        assert not c.contains(1)

    def test_dirty_eviction_writes_back(self):
        c = Cache(CacheConfig("t", 4, 4))
        c.access(1, True)
        for line in (2, 3, 4, 5):
            outcome = c.access(line, False)
        assert c.stat_writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = Cache(CacheConfig("t", 4, 4))
        for line in range(5):
            c.access(line, False)
        assert c.stat_writebacks == 0

    def test_write_marks_dirty_on_hit(self):
        c = Cache(CacheConfig("t", 4, 4))
        c.access(7, False)
        c.access(7, True)
        for line in (8, 9, 10, 11):
            c.access(line, False)
        assert c.stat_writebacks == 1

    def test_hit_rate(self):
        c = Cache(CacheConfig("t", 16, 4))
        c.access(1, False)
        c.access(1, False)
        assert c.hit_rate == 0.5

    def test_negative_line_rejected(self):
        c = Cache(CacheConfig("t", 16, 4))
        with pytest.raises(ValueError):
            c.access(-1, False)


class TestHierarchy:
    def test_l1_hit_no_memory(self):
        h = CacheHierarchy()
        h.access(42, False)
        assert h.access(42, False) == []

    def test_cold_miss_goes_to_memory(self):
        h = CacheHierarchy()
        out = h.access(42, False)
        assert (OpType.READ, 42) in out

    def test_l2_caches_for_l1_evictions(self):
        small_l1 = CacheConfig("L1", 4, 2)
        h = CacheHierarchy(l1=small_l1)
        h.access(0, False)
        for line in range(2, 40, 2):  # blow out L1, not L2
            h.access(line, False)
        assert h.access(0, False) == []  # L2 still holds it

    def test_stats(self):
        h = CacheHierarchy()
        h.access(1, False)
        h.access(1, False)
        s = h.stats()
        assert s.memory_reads == 1
        assert 0 < s.l1_hit_rate <= 1


class TestFilterTrace:
    def test_hot_loop_filters_out(self):
        raw = [(10, line % 8, False) for line in range(1000)]
        trace = filter_trace(raw)
        assert len(trace) <= 8  # only cold misses survive

    def test_streaming_passes_through(self):
        raw = [(10, line * 64, False) for line in range(200)]
        trace = filter_trace(raw)
        assert len(trace) == 200

    def test_gaps_accumulate_across_hits(self):
        raw = [(10, 0, False), (10, 0, False), (10, 64, False)]
        trace = filter_trace(raw)
        # First access misses; second hits (gap absorbed); third misses
        # with the accumulated gap.
        assert len(trace) == 2
        assert trace[1].gap >= 20

    def test_writebacks_become_memory_writes(self):
        small = CacheHierarchy(
            l1=CacheConfig("L1", 4, 2), l2=CacheConfig("L2", 8, 2)
        )
        raw = [(1, line * 64, True) for line in range(50)]
        trace = filter_trace(raw, hierarchy=small)
        assert trace.writes > 0
