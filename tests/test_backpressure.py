"""Tests for transaction-queue back-pressure (Section 5.1)."""

import pytest

from repro.core.diagram import occupancy_summary, render_interval
from repro.core.fs_controller import FixedServiceController
from repro.core.pipeline_solver import SharingLevel
from repro.core.schedule import build_fs_schedule
from repro.dram.commands import OpType, Request
from repro.dram.system import DramSystem
from repro.dram.timing import DDR3_1600_X4
from repro.mapping.address import Geometry
from repro.mapping.partition import RankPartition
from repro.sim.config import SystemConfig
from repro.sim.runner import run_scheme
from repro.workloads.spec import suite_specs

P = DDR3_1600_X4


class TestFsBackpressure:
    def _controller(self):
        dram = DramSystem(P)
        partition = RankPartition(Geometry(), 8)
        schedule = build_fs_schedule(P, 8, SharingLevel.RANK)
        return FixedServiceController(dram, schedule, partition), partition

    def test_accepts_until_capacity(self):
        ctrl, part = self._controller()
        cap = ctrl.QUEUE_CAPACITY
        for i in range(cap):
            assert ctrl.can_accept(0)
            ctrl.enqueue(Request(
                op=OpType.WRITE, address=part.decode(0, i), domain=0,
                arrival=0, line=i,
            ))
        assert not ctrl.can_accept(0)

    def test_backpressure_is_per_domain(self):
        """One domain's full queue must not stall any other domain —
        that would itself be an interference channel."""
        ctrl, part = self._controller()
        for i in range(ctrl.QUEUE_CAPACITY):
            ctrl.enqueue(Request(
                op=OpType.WRITE, address=part.decode(3, i), domain=3,
                arrival=0, line=i,
            ))
        assert not ctrl.can_accept(3)
        for other in (0, 1, 2, 4, 5, 6, 7):
            assert ctrl.can_accept(other)

    def test_service_reopens_the_queue(self):
        ctrl, part = self._controller()
        for i in range(ctrl.QUEUE_CAPACITY):
            ctrl.enqueue(Request(
                op=OpType.WRITE, address=part.decode(0, i * 131),
                domain=0, arrival=0, line=i * 131,
            ))
        assert not ctrl.can_accept(0)
        ctrl.advance(2000)
        assert ctrl.can_accept(0)

    def test_system_completes_under_backpressure(self):
        """An intense workload against a tiny queue still finishes (the
        cores stall instead of overflowing anything)."""
        original = FixedServiceController.QUEUE_CAPACITY
        FixedServiceController.QUEUE_CAPACITY = 4
        try:
            config = SystemConfig(accesses_per_core=200)
            result = run_scheme(
                "fs_rp", config, suite_specs("libquantum", 8),
                max_cycles=8_000_000,
            )
            assert all(c.done for c in result.cores)
        finally:
            FixedServiceController.QUEUE_CAPACITY = original


class TestDiagram:
    def test_figure1_renders_without_conflicts(self):
        schedule = build_fs_schedule(P, 8, SharingLevel.RANK)
        art = render_interval(schedule)
        assert "!" not in art  # the conflict marker never appears
        assert "DATA" in art and "ACT" in art and "COL" in art

    def test_write_slots_render_as_letters(self):
        schedule = build_fs_schedule(P, 8, SharingLevel.RANK)
        pattern = [True] * 8
        pattern[5] = False  # domain 5 writes
        art = render_interval(schedule, pattern)
        assert "F" in art  # 'A' + 5

    def test_occupancy_matches_peak_utilization(self):
        schedule = build_fs_schedule(P, 8, SharingLevel.RANK)
        occupancy = occupancy_summary(schedule)
        assert occupancy["DATA"] == pytest.approx(4 / 7)
        assert occupancy["ACT"] == pytest.approx(1 / 7)
        assert occupancy["COL"] == pytest.approx(1 / 7)

    def test_pattern_length_validated(self):
        schedule = build_fs_schedule(P, 8, SharingLevel.RANK)
        with pytest.raises(ValueError):
            render_interval(schedule, [True] * 3)
