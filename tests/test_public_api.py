"""Public API smoke tests: the README quickstart must keep working."""

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.cache
        import repro.controllers
        import repro.core
        import repro.cpu
        import repro.dram
        import repro.mapping
        import repro.prefetch
        import repro.sim
        import repro.workloads

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis as a
        import repro.controllers as c
        import repro.core as core
        import repro.dram as d
        import repro.mapping as m
        import repro.sim as s
        import repro.workloads as w

        for module in (a, c, core, d, m, s, w):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestQuickstart:
    """The exact flow shown in the README."""

    def test_readme_flow(self):
        from repro import SystemConfig, run_scheme, suite_specs

        config = SystemConfig(accesses_per_core=150)
        baseline = run_scheme("baseline", config, suite_specs("mcf"))
        secure = run_scheme("fs_rp", config, suite_specs("mcf"))
        ratio = secure.weighted_ipc(baseline) / 8.0
        assert 0.4 < ratio < 1.0

    def test_solver_quickstart(self):
        from repro import DDR3_1600_X4, PipelineSolver, PeriodicMode, \
            SharingLevel

        solver = PipelineSolver(DDR3_1600_X4)
        assert solver.solve(PeriodicMode.DATA, SharingLevel.RANK) == 7

    def test_schedule_quickstart(self):
        from repro import build_fs_schedule, validate_schedule, \
            SharingLevel, DDR3_1600_X4

        schedule = build_fs_schedule(DDR3_1600_X4, 8, SharingLevel.RANK)
        assert validate_schedule(schedule) == []

    def test_interference_quickstart(self):
        from repro import SystemConfig, interference_report, workload

        report = interference_report(
            "fs_rp", workload("xalancbmk"),
            config=SystemConfig(accesses_per_core=100),
        )
        assert report.identical
