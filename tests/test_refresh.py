"""Unit tests for the deterministic refresh scheduler."""

import pytest

from repro.dram.refresh import RefreshScheduler, RefreshWindow
from repro.dram.timing import DDR3_1600_X4

P = DDR3_1600_X4


@pytest.fixture
def sched():
    return RefreshScheduler(P, num_ranks=8)


class TestPhases:
    def test_ranks_staggered(self, sched):
        phases = [sched.phase(r) for r in range(8)]
        assert phases == sorted(phases)
        assert len(set(phases)) == 8

    def test_stagger_avoids_overlap(self, sched):
        # With tRFC < tREFI / ranks the blackouts never overlap.
        stride = P.tREFI // 8
        assert P.tRFC < stride or P.tRFC >= stride  # document either way
        for r in range(7):
            assert sched.phase(r + 1) - sched.phase(r) == stride


class TestNextRefresh:
    def test_first_refresh_at_phase(self, sched):
        w = sched.next_refresh(0, 0)
        assert w.start == 0 and w.end == P.tRFC

    def test_period_is_trefi(self, sched):
        w1 = sched.next_refresh(3, 0)
        w2 = sched.next_refresh(3, w1.start + 1)
        assert w2.start - w1.start == P.tREFI

    def test_clock_driven_only(self, sched):
        # The schedule is a pure function of (rank, time): two scheduler
        # instances always agree.
        other = RefreshScheduler(P, num_ranks=8)
        for now in (0, 137, 9999, 123456):
            for r in range(8):
                assert sched.next_refresh(r, now) == \
                    other.next_refresh(r, now)


class TestCurrentWindow:
    def test_inside_window(self, sched):
        w = sched.current_window(0, P.tRFC - 1)
        assert w is not None and w.blocks(P.tRFC - 1)

    def test_outside_window(self, sched):
        assert sched.current_window(0, P.tRFC) is None

    def test_blocked_until(self, sched):
        assert sched.blocked_until(0, 5) == P.tRFC
        assert sched.blocked_until(0, P.tRFC + 5) == P.tRFC + 5


class TestWindowsBetween:
    def test_counts_windows_in_range(self, sched):
        windows = sched.windows_between(0, 0, 3 * P.tREFI)
        assert len(windows) == 3

    def test_empty_range(self, sched):
        assert sched.windows_between(0, 100, 100) == []

    def test_includes_straddling_window(self, sched):
        windows = sched.windows_between(0, P.tRFC - 1, P.tRFC)
        assert len(windows) == 1 and windows[0].start == 0


class TestDisabled:
    def test_disabled_returns_none(self):
        sched = RefreshScheduler(P, num_ranks=4, enabled=False)
        assert sched.next_refresh(0, 0) is None
        assert sched.current_window(0, 0) is None
        assert sched.windows_between(0, 0, 10 * P.tREFI) == []


class TestValidation:
    def test_rank_bounds(self, sched):
        with pytest.raises(ValueError):
            sched.phase(8)
        with pytest.raises(ValueError):
            sched.next_refresh(-1, 0)

    def test_needs_ranks(self):
        with pytest.raises(ValueError):
            RefreshScheduler(P, num_ranks=0)
