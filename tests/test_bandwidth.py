"""Tests for the bandwidth-latency characterization."""

import pytest

from repro.analysis.bandwidth import (
    bandwidth_latency_curve,
    measure_load_point,
    saturation_bandwidth,
)
from repro.sim.config import SystemConfig

CFG = SystemConfig()
FAST = dict(duration=8000, config=CFG)


class TestLoadPoints:
    def test_light_load_low_latency(self):
        point = measure_load_point("baseline", 0.3, **FAST)
        assert point.mean_latency < 100
        assert point.completion > 0.95

    def test_overload_explodes_latency(self):
        light = measure_load_point("fs_rp", 0.5, **FAST)
        heavy = measure_load_point("fs_rp", 3.0, **FAST)
        assert heavy.mean_latency > 5 * light.mean_latency

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            measure_load_point("baseline", 0.0, **FAST)


class TestSaturation:
    def test_fs_rp_pinned_at_pipeline_peak(self):
        """FS fills every slot (demand or dummy): utilization sits at
        the 57% pipeline peak regardless of offered load."""
        for load in (0.5, 2.5):
            point = measure_load_point("fs_rp", load, **FAST)
            assert point.utilization == pytest.approx(4 / 7, abs=0.02)

    def test_baseline_saturates_higher_than_fs(self):
        base = measure_load_point("baseline", 3.0, **FAST)
        fs = measure_load_point("fs_rp", 3.0, **FAST)
        assert base.utilization > fs.utilization

    def test_reordered_bp_peak_is_51_percent(self):
        point = measure_load_point("fs_reordered_bp", 3.0, **FAST)
        assert point.utilization == pytest.approx(32 / 63, abs=0.02)

    def test_curve_and_helper(self):
        points = bandwidth_latency_curve(
            "baseline", loads=(0.5, 2.0), **FAST
        )
        assert len(points) == 2
        assert saturation_bandwidth(points) == max(
            p.utilization for p in points
        )
        with pytest.raises(ValueError):
            saturation_bandwidth([])

    def test_fs_knee_at_slot_rate(self):
        """The latency knee sits at the per-domain slot rate
        (1 request / 56 cycles = ~1.79 per 100)."""
        below = measure_load_point("fs_rp", 1.5, **FAST)
        above = measure_load_point("fs_rp", 2.2, **FAST)
        assert below.mean_latency < 200
        assert above.mean_latency > 400
