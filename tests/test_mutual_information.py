"""Tests for the mutual-information leakage estimator."""

import math

import pytest

from repro.analysis.mutual_information import (
    estimate_channel_leakage,
    mutual_information_bits,
)
from repro.sim.config import SystemConfig


class TestMiEstimator:
    def test_independent_variables_zero_bits(self):
        samples = [(s, (0,)) for s in (0, 1, 0, 1)]
        assert mutual_information_bits(samples) == 0.0

    def test_fully_determined_one_bit(self):
        samples = [(0, (10,)), (1, (20,))] * 8
        assert mutual_information_bits(samples) == pytest.approx(1.0)

    def test_two_bits_for_four_secrets(self):
        samples = [(s, (s,)) for s in range(4)] * 4
        assert mutual_information_bits(samples) == pytest.approx(2.0)

    def test_partial_leak_between(self):
        # Secret 0 and 1 share an observation half the time.
        samples = (
            [(0, (0,))] * 4 + [(1, (0,))] * 2 + [(1, (1,))] * 2
        )
        bits = mutual_information_bits(samples)
        assert 0.0 < bits < 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mutual_information_bits([])


class TestChannelLeakage:
    CFG = SystemConfig(accesses_per_core=120)

    def test_fs_leaks_zero_bits(self):
        estimate = estimate_channel_leakage(
            "fs_rp", seeds=(0, 1), config=self.CFG
        )
        assert estimate.bits == 0.0
        assert estimate.fraction_leaked == 0.0

    def test_baseline_leaks_the_whole_secret(self):
        estimate = estimate_channel_leakage(
            "baseline", seeds=(0, 1), config=self.CFG
        )
        assert estimate.bits == pytest.approx(estimate.max_bits)
        assert estimate.max_bits == pytest.approx(math.log2(3))

    def test_sample_bookkeeping(self):
        estimate = estimate_channel_leakage(
            "fs_rp", seeds=(0,), config=self.CFG
        )
        assert estimate.samples == 3  # three secrets, one seed
