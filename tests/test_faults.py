"""Fault injection, online runtime verification, and sweep resilience.

The three acceptance properties from the robustness milestone:

(a) every FS scheme survives a full fault campaign with a *clean* online
    monitor — security-preserving recovery never deviates from the
    timetable;
(b) non-interference holds bit-for-bit even with faults enabled, because
    fault schedules are pure functions of each domain's own progress;
(c) a deliberately broken recovery policy (borrowing a foreign slot) is
    caught by the watchdog the cycle it happens, with a structured
    :class:`ScheduleViolationError` naming domain and cycle.

Plus: online/offline checker parity on perturbed command streams, and
sweep checkpoint/resume reproducing an interrupted grid exactly.
"""

import dataclasses
import json
import random

import pytest

from repro.core.invariants import assert_non_interference
from repro.core.online_monitor import OnlineInvariantMonitor
from repro.dram.checker import TimingChecker, Violation
from repro.dram.timing import DDR3_1600_X4
from repro.errors import (
    ConfigError,
    FaultInjectionError,
    ReproError,
    ScheduleViolationError,
    SimTimeoutError,
    TraceError,
)
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.mapping.address import Geometry
from repro.sim.config import SystemConfig
from repro.sim.runner import SchemeOptions, build_system, run_scheme
from repro.sim.sweep import FailedPoint, Sweep
from repro.workloads.spec import suite_specs, workload
from repro.workloads.synthetic import generate_trace


FS_SCHEMES = ["fs_rp", "fs_bp", "fs_np", "fs_np_ta", "fs_reordered_bp"]

#: A campaign arming every recoverable fault model at a punishing rate.
FULL_CAMPAIGN = FaultPlan.parse(
    "drop_command:0.05,duplicate_command:0.05,delay_slot:0.03,"
    "refresh_collision:0.02,corrupt_trace:0.02,queue_overflow:0.02",
    seed=11,
)


def small_config(cores: int = 8, accesses: int = 120) -> SystemConfig:
    return SystemConfig(num_cores=cores, accesses_per_core=accesses)


# ---------------------------------------------------------------------------
# Exception hierarchy.
# ---------------------------------------------------------------------------


class TestErrorHierarchy:
    def test_all_under_repro_error(self):
        for exc_type in (ConfigError, TraceError, ScheduleViolationError,
                         FaultInjectionError, SimTimeoutError):
            assert issubclass(exc_type, ReproError)

    def test_legacy_value_error_compat(self):
        # Pre-hierarchy call sites caught ValueError for these two.
        assert issubclass(ConfigError, ValueError)
        assert issubclass(TraceError, ValueError)

    def test_schedule_violation_carries_context(self):
        exc = ScheduleViolationError("foreign offset", domain=3, cycle=99)
        assert exc.domain == 3
        assert exc.cycle == 99
        assert "domain 3" in str(exc)
        assert "99" in str(exc)


# ---------------------------------------------------------------------------
# FaultPlan parsing and the deterministic injector.
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_kinds_and_rates(self):
        plan = FaultPlan.parse("drop_command:0.25,delay_slot", seed=3)
        assert plan.rate_of(FaultKind.DROP_COMMAND, 0) == 0.25
        assert plan.rate_of(FaultKind.DELAY_SLOT, 0) == 0.01  # default
        assert plan.rate_of(FaultKind.CORRUPT_TRACE, 0) == 0.0
        assert plan.seed == 3

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(FaultInjectionError, match="unknown fault"):
            FaultPlan.parse("cosmic_ray:0.5")

    def test_parse_rejects_bad_rate(self):
        with pytest.raises(FaultInjectionError, match="bad fault rate"):
            FaultPlan.parse("drop_command:lots")

    def test_parse_rejects_empty(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse("  , ,")

    def test_rate_out_of_range(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(FaultKind.DROP_COMMAND, 1.5)

    def test_plan_is_hashable_and_immutable(self):
        plan = FaultPlan.parse("drop_command:0.1", seed=1)
        assert hash(plan) == hash(FaultPlan.parse("drop_command:0.1",
                                                  seed=1))
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.seed = 2

    def test_empty_property(self):
        assert FaultPlan((FaultSpec(FaultKind.DROP_COMMAND, 0.0),)).empty
        assert not FULL_CAMPAIGN.empty


class TestInjectorDeterminism:
    def test_fresh_injectors_agree(self):
        a = FULL_CAMPAIGN.injector()
        b = FULL_CAMPAIGN.injector()
        grid = [(d, k) for d in range(8) for k in range(200)]
        assert [a.drop_command(d, k) for d, k in grid] == \
               [b.drop_command(d, k) for d, k in grid]
        assert [a.delay_slot(d, k) for d, k in grid] == \
               [b.delay_slot(d, k) for d, k in grid]

    def test_seed_changes_schedule(self):
        other = FaultPlan(FULL_CAMPAIGN.specs, seed=12345)
        a, b = FULL_CAMPAIGN.injector(), other.injector()
        grid = [(d, k) for d in range(8) for k in range(400)]
        assert [a.drop_command(d, k) for d, k in grid] != \
               [b.drop_command(d, k) for d, k in grid]

    def test_rate_extremes(self):
        never = FaultPlan((FaultSpec(FaultKind.DROP_COMMAND, 0.0),))
        always = FaultPlan((FaultSpec(FaultKind.DROP_COMMAND, 1.0),))
        assert not any(
            never.injector().drop_command(0, k) for k in range(100)
        )
        assert all(
            always.injector().drop_command(0, k) for k in range(100)
        )

    def test_domain_scoping(self):
        plan = FaultPlan(
            (FaultSpec(FaultKind.DELAY_SLOT, 1.0, domains=(2,)),)
        )
        inj = plan.injector()
        assert inj.delay_slot(2, 0)
        assert not inj.delay_slot(1, 0)

    def test_corrupt_trace_is_deterministic_and_sane(self):
        trace = generate_trace(workload("mcf"), 300, seed=5)
        plan = FaultPlan(
            (FaultSpec(FaultKind.CORRUPT_TRACE, 0.1),), seed=9
        )
        a = plan.injector().corrupt_trace(trace, domain=0)
        b = plan.injector().corrupt_trace(trace, domain=0)
        assert len(a) == len(trace)
        assert all(r.gap >= 0 and r.line >= 0 for r in a)
        assert [(r.gap, r.line) for r in a] == \
               [(r.gap, r.line) for r in b]
        # Some record actually changed.
        assert [(r.gap, r.line) for r in a] != \
               [(r.gap, r.line) for r in trace]

    def test_queue_overflow_shrinks_then_recovers(self):
        plan = FaultPlan(
            (FaultSpec(FaultKind.QUEUE_OVERFLOW, 1.0),), seed=0
        )
        inj = plan.injector()
        inj.note_enqueue(0)
        shrunk = inj.effective_capacity(0, 64)
        assert shrunk == 64 // inj.OVERFLOW_SHRINK
        for _ in range(inj.OVERFLOW_SPAN + 1):
            inj.note_enqueue(0)
        # Rate 1.0 re-arms every enqueue, so test recovery on a domain
        # whose episode has lapsed without new enqueues instead.
        assert inj.effective_capacity(1, 64) == 64


# ---------------------------------------------------------------------------
# (a) Faulted runs stay on the timetable: clean monitor, work completes.
# ---------------------------------------------------------------------------


class TestFaultedRunsStayClean:
    @pytest.mark.parametrize("scheme", FS_SCHEMES)
    def test_monitor_clean_under_full_campaign(self, scheme):
        config = small_config()
        system = build_system(
            scheme, config, suite_specs("mcf", config.num_cores),
            SchemeOptions(faults=FULL_CAMPAIGN, monitor=True),
        )
        result = system.run()
        injector = system.controller.fault_injector
        assert injector is not None and injector.total > 0, \
            "campaign never struck; the test proves nothing"
        monitor = system.controller.monitor
        assert monitor is not None
        assert monitor.violations == []
        assert monitor.ok
        # Recovery really recovered: every core finished its trace.
        assert all(core.done for core in result.cores)
        assert result.stats.faulted_slots > 0

    def test_faults_change_nothing_when_rate_zero(self):
        config = small_config(accesses=100)
        zero = FaultPlan((FaultSpec(FaultKind.DROP_COMMAND, 0.0),))
        specs = suite_specs("mcf", config.num_cores)
        plain = run_scheme("fs_rp", config, specs)
        faulted = run_scheme(
            "fs_rp", config, specs, SchemeOptions(faults=zero)
        )
        assert plain.service_trace == faulted.service_trace

    def test_dropped_demands_are_reissued_same_domain(self):
        config = small_config(accesses=100)
        plan = FaultPlan(
            (FaultSpec(FaultKind.DROP_COMMAND, 0.2, domains=(3,)),),
            seed=2,
        )
        system = build_system(
            "fs_rp", config, suite_specs("mcf", config.num_cores),
            SchemeOptions(faults=plan),
        )
        result = system.run()
        injector = system.controller.fault_injector
        assert injector.counts[FaultKind.DROP_COMMAND] > 0
        assert all(
            event.domain == 3 for event in injector.events
        )
        assert all(core.done for core in result.cores)
        # The faulted slots appear in the victim's own trace as 'F'.
        kinds = {k for _, k in result.service_trace[3]}
        assert "F" in kinds

    def test_duplicates_squashed_before_the_bus(self):
        config = small_config(accesses=100)
        plan = FaultPlan(
            (FaultSpec(FaultKind.DUPLICATE_COMMAND, 0.3),), seed=4
        )
        system = build_system(
            "fs_rp", config, suite_specs("mcf", config.num_cores),
            SchemeOptions(faults=plan, monitor=True),
        )
        result = system.run()
        assert result.stats.squashed_duplicates > 0
        assert system.controller.monitor.ok


# ---------------------------------------------------------------------------
# (b) Non-interference survives the fault campaign.
# ---------------------------------------------------------------------------


class TestNonInterferenceUnderFaults:
    @pytest.mark.parametrize("scheme", ["fs_rp", "fs_reordered_bp"])
    def test_victim_view_identical_under_faults(self, scheme):
        from repro.analysis.leakage import interference_report

        config = small_config(accesses=100)
        report = interference_report(
            scheme, workload("mcf"), config=config,
            options=SchemeOptions(faults=FULL_CAMPAIGN),
        )
        assert report.identical, (
            "fault injection opened a timing channel: "
            f"profile divergence "
            f"{report.max_profile_divergence_cycles} cycles"
        )

    def test_assert_non_interference_under_faults(self):
        assert_non_interference(
            "fs_rp", workload("mcf"), config=small_config(accesses=80),
            options=SchemeOptions(faults=FULL_CAMPAIGN),
        )

    def test_assert_non_interference_without_faults_still_passes(self):
        assert_non_interference(
            "fs_rp", workload("mcf"), config=small_config(accesses=80)
        )


# ---------------------------------------------------------------------------
# (c) The watchdog catches a broken recovery policy.
# ---------------------------------------------------------------------------


class TestWatchdogCatchesBrokenRecovery:
    BORROW = FaultPlan(
        (FaultSpec(FaultKind.BORROW_FOREIGN_SLOT, 0.5),), seed=1
    )

    def test_strict_monitor_raises_structured_error(self):
        config = small_config(accesses=100)
        system = build_system(
            "fs_rp", config, suite_specs("mcf", config.num_cores),
            SchemeOptions(
                faults=self.BORROW, monitor=True, monitor_strict=True
            ),
        )
        with pytest.raises(ScheduleViolationError) as info:
            system.run()
        assert info.value.domain is not None
        assert info.value.cycle is not None
        assert "foreign offset" in str(info.value)

    def test_lenient_monitor_accumulates_violations(self):
        config = small_config(accesses=100)
        system = build_system(
            "fs_rp", config, suite_specs("mcf", config.num_cores),
            SchemeOptions(faults=self.BORROW, monitor=True),
        )
        system.run()
        monitor = system.controller.monitor
        assert not monitor.ok
        assert monitor.total_violations > 0
        with pytest.raises(ScheduleViolationError):
            monitor.raise_if_violated()

    def test_offline_checker_agrees_borrowing_is_visible(self):
        from repro.core.invariants import check_schedule_conformance

        config = small_config(accesses=100)
        system = build_system(
            "fs_rp", config, suite_specs("mcf", config.num_cores),
            SchemeOptions(faults=self.BORROW),
        )
        system.run()
        violations = check_schedule_conformance(
            system.controller.schedule, system.controller.service_trace
        )
        assert violations


# ---------------------------------------------------------------------------
# Online monitor == offline TimingChecker on perturbed command streams.
# ---------------------------------------------------------------------------


def _timing_signature(violations):
    return sorted(
        (v.rule, v.required_gap, v.actual_gap)
        for v in violations if isinstance(v, Violation)
    )


class TestCheckerParity:
    def _command_log(self):
        config = small_config(accesses=80)
        system = build_system(
            "fs_rp", config, suite_specs("mcf", config.num_cores),
            SchemeOptions(log_commands=True),
        )
        system.run()
        return system.controller.command_log

    def _replay(self, commands):
        """Feed the same stream to both checkers; return signatures."""
        ordered = sorted(commands, key=lambda c: (c.cycle, c.type.value))
        offline = TimingChecker(DDR3_1600_X4).check(ordered)
        monitor = OnlineInvariantMonitor(DDR3_1600_X4)
        for command in ordered:
            monitor.observe_command(command)
        monitor.finalize()
        return _timing_signature(offline), \
            _timing_signature(monitor.violations)

    def test_clean_stream_is_clean_for_both(self):
        log = self._command_log()
        assert log, "expected a non-empty command log"
        offline, online = self._replay(log)
        assert offline == [] and online == []

    @pytest.mark.parametrize("seed", range(6))
    def test_perturbed_streams_flag_identically(self, seed):
        log = self._command_log()
        rng = random.Random(seed)
        commands = list(log)
        # Shift a handful of commands by small deltas: enough to break
        # tCCD/tRCD/data-bus pitch without degenerating the stream.
        for _ in range(4):
            index = rng.randrange(len(commands))
            delta = rng.choice([-4, -2, -1, 1, 2, 4])
            victim = commands[index]
            commands[index] = dataclasses.replace(
                victim, cycle=max(0, victim.cycle + delta)
            )
        offline, online = self._replay(commands)
        assert online == offline


# ---------------------------------------------------------------------------
# Config validation (satellite c).
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=0)
        with pytest.raises(ConfigError):
            SystemConfig(accesses_per_core=0)
        # Geometry validates its own fields (plain ValueError, which
        # ConfigError deliberately subclasses).
        with pytest.raises(ValueError):
            Geometry(ranks=0)

    def test_rank_partition_needs_enough_ranks(self):
        config = SystemConfig(
            num_cores=8, geometry=Geometry(channels=1, ranks=2)
        )
        with pytest.raises(ConfigError, match="fs_rp"):
            config.validate_for_scheme("fs_rp")
        # Enough ranks: fine.
        SystemConfig(num_cores=8).validate_for_scheme("fs_rp")

    def test_bank_partition_rejects_non_pow2_banks(self):
        config = SystemConfig(
            num_cores=4, geometry=Geometry(ranks=4, banks=6)
        )
        with pytest.raises(ConfigError, match="power of two"):
            config.validate_for_scheme("fs_bp")

    def test_build_fails_loudly_not_silently(self):
        config = SystemConfig(
            num_cores=8, geometry=Geometry(channels=1, ranks=2),
            accesses_per_core=10,
        )
        with pytest.raises(ConfigError):
            run_scheme("fs_rp", config, suite_specs("mcf", 8))

    def test_unpartitioned_schemes_unconstrained(self):
        config = SystemConfig(
            num_cores=8, geometry=Geometry(channels=1, ranks=2),
        )
        config.validate_for_scheme("fs_np")  # no raise
        config.validate_for_scheme("baseline")


# ---------------------------------------------------------------------------
# Sweep resilience: isolation, budgets, checkpoint/resume.
# ---------------------------------------------------------------------------


def sweep_config() -> SystemConfig:
    return SystemConfig(num_cores=4, accesses_per_core=60,
                        geometry=Geometry(ranks=4))


class TestSweepResilience:
    def test_failing_cell_is_isolated(self, monkeypatch):
        def boom(scheme, *args, **kwargs):
            if scheme == "fs_bp":
                raise RuntimeError("synthetic cell failure")
            return real(scheme, *args, **kwargs)

        import repro.sim.sweep as sweep_mod

        real = sweep_mod.run_scheme
        monkeypatch.setattr(sweep_mod, "run_scheme", boom)
        sweep = Sweep(sweep_config(), max_cycles=2_000_000)
        ok = sweep.run_point("fs_rp", "mcf")
        bad = sweep.run_point("fs_bp", "mcf")
        assert ok is not None
        assert bad is None
        assert len(sweep.failed_points) == 1
        failed = sweep.failed_points[0]
        assert isinstance(failed, FailedPoint)
        assert failed.error_type == "RuntimeError"
        assert failed.scheme == "fs_bp"

    def test_strict_mode_reraises(self, monkeypatch):
        import repro.sim.sweep as sweep_mod

        monkeypatch.setattr(
            sweep_mod, "run_scheme",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        sweep = Sweep(sweep_config(), strict=True)
        with pytest.raises(RuntimeError):
            sweep.run_point("fs_rp", "mcf")

    def test_wall_budget_zero_records_timeout(self):
        sweep = Sweep(sweep_config(), point_wall_budget_s=0.0)
        assert sweep.run_point("fs_rp", "mcf") is None
        assert sweep.failed_points
        assert sweep.failed_points[0].error_type == "SimTimeoutError"

    def test_sim_timeout_carries_cycle(self):
        config = sweep_config()
        with pytest.raises(SimTimeoutError) as info:
            run_scheme(
                "fs_rp", config, suite_specs("mcf", 4),
                wall_budget_s=0.0,
            )
        assert info.value.cycle is not None

    def test_checkpoint_resume_reproduces_table(
        self, tmp_path, monkeypatch
    ):
        import repro.sim.sweep as sweep_mod

        config = sweep_config()
        grid = [("fs_rp", "mcf"), ("fs_rp", "libquantum"),
                ("fs_rp", "milc")]

        # Reference: the grid run to completion, no interruptions.
        reference = Sweep(config, max_cycles=2_000_000)
        for scheme, wl in grid:
            reference.run_point(scheme, wl)
        assert len(reference.points) == len(grid)

        # Interrupted run: the third cell dies mid-grid (strict, so the
        # "kill" propagates like a crash would).
        ckpt = str(tmp_path / "grid.json")
        real = sweep_mod.run_scheme
        calls = {"n": 0}

        def flaky(scheme, cfg, specs, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 4:  # cells 1-2 (+baselines) fine, then die
                raise SimTimeoutError("killed mid-grid", cycle=123)
            return real(scheme, cfg, specs, *args, **kwargs)

        monkeypatch.setattr(sweep_mod, "run_scheme", flaky)
        interrupted = Sweep(
            config, max_cycles=2_000_000, checkpoint=ckpt, strict=True
        )
        with pytest.raises(SimTimeoutError):
            for scheme, wl in grid:
                interrupted.run_point(scheme, wl)
        assert 0 < len(interrupted.points) < len(grid)
        monkeypatch.setattr(sweep_mod, "run_scheme", real)

        # Resume: a fresh Sweep on the same checkpoint re-simulates only
        # the missing cells and reproduces the reference table exactly.
        resumed = Sweep(
            config, max_cycles=2_000_000, checkpoint=ckpt, strict=True
        )
        already = len(resumed.points)
        assert already == len(interrupted.points)
        for scheme, wl in grid:
            resumed.run_point(scheme, wl)
        assert resumed.points == reference.points

        # And the checkpoint file itself round-trips.
        with open(ckpt) as handle:
            data = json.load(handle)
        assert data["version"] == sweep_mod.CHECKPOINT_VERSION
        assert len(data["points"]) == len(grid)

    def test_incompatible_checkpoint_is_ignored(self, tmp_path):
        ckpt = tmp_path / "old.json"
        ckpt.write_text(json.dumps({"version": -1, "points": [
            {"scheme": "x", "workload": "y", "cores": 1, "label": "x",
             "weighted_ipc": 1, "bus_utilization": 1,
             "mean_read_latency": 1, "energy_pj": 1}
        ]}))
        sweep = Sweep(sweep_config(), checkpoint=str(ckpt))
        assert sweep.points == []

    def test_failed_points_survive_checkpoint(self, tmp_path):
        ckpt = str(tmp_path / "fail.json")
        sweep = Sweep(
            sweep_config(), checkpoint=ckpt, point_wall_budget_s=0.0
        )
        sweep.run_point("fs_rp", "mcf")
        assert sweep.failed_points
        reloaded = Sweep(sweep_config(), checkpoint=ckpt)
        assert reloaded.failed_points == sweep.failed_points


# ---------------------------------------------------------------------------
# CLI plumbing for the new verbs.
# ---------------------------------------------------------------------------


class TestCli:
    def test_run_with_injection_and_monitor(self, capsys):
        from repro.cli import main

        code = main([
            "run", "fs_rp", "mcf", "--accesses", "60",
            "--inject", "drop_command:0.05,delay_slot:0.02",
            "--monitor",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fault campaign" in out
        assert "CLEAN" in out

    def test_bad_inject_spec_exits_2(self, capsys):
        from repro.cli import main

        code = main([
            "run", "fs_rp", "mcf", "--inject", "warp_core:0.5",
        ])
        err = capsys.readouterr().err
        assert code == 2
        assert "FaultInjectionError" in err

    def test_sweep_verb_with_checkpoint(self, tmp_path, capsys):
        from repro.cli import main

        ckpt = str(tmp_path / "cli.json")
        code = main([
            "sweep", "--schemes", "fs_rp", "--workloads", "mcf",
            "--accesses", "60", "--cores", "4",
            "--checkpoint", ckpt,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fs_rp" in out
        with open(ckpt) as handle:
            assert json.load(handle)["points"]
