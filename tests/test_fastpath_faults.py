"""Fault injection × fast path: identical recovery under both engines.

The fast engine must not change *how the system breaks*: for every fault
model in :mod:`repro.faults`, a seeded campaign run under the fast engine
strikes the same faults at the same cycles, triggers the same recovery,
and ends with the same statistics, traces, and per-core results as the
reference engine.  (Under fault injection the fast FS controllers
renounce their release-horizon stride — the deliberately-broken
borrow-foreign-slot recovery can complete requests at cycles the bound
does not cover — and the driver falls back to ``next_event``
granularity, so equivalence is exact rather than merely statistical.)
"""

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.sim.runner import SchemeOptions

from .engine_equivalence import assert_equivalent, run_both


def _plan(kind: FaultKind, rate: float = 0.08,
          seed: int = 7) -> FaultPlan:
    return FaultPlan((FaultSpec(kind, rate),), seed)


def _events(controller):
    injector = getattr(controller, "fault_injector", None)
    if injector is None:
        return None
    return [(e.kind, e.domain, e.cycle) for e in injector.events]


def _check_faulted(scheme: str, kind: FaultKind, **kwargs) -> None:
    options = SchemeOptions(faults=_plan(kind))
    outcomes = run_both(scheme, options=options, accesses=100, **kwargs)
    assert_equivalent(outcomes)
    # The fault *event logs* must agree too: same kinds, same domains,
    # same strike cycles (each run builds a fresh injector from the
    # immutable plan, so the schedules are seed-deterministic).
    ref_events = _events(outcomes["reference"][1])
    fast_events = _events(outcomes["fast"][1])
    assert fast_events == ref_events, "fault event logs diverged"


@pytest.mark.parametrize(
    "kind",
    [FaultKind.DROP_COMMAND, FaultKind.DUPLICATE_COMMAND,
     FaultKind.DELAY_SLOT, FaultKind.REFRESH_COLLISION,
     FaultKind.CORRUPT_TRACE, FaultKind.QUEUE_OVERFLOW,
     FaultKind.BORROW_FOREIGN_SLOT],
)
def test_fs_rp_fault_recovery_equivalent(kind):
    """Every fault class, on the flagship FS rank-partitioned scheme."""
    _check_faulted("fs_rp", kind)


@pytest.mark.parametrize(
    "kind",
    [FaultKind.DROP_COMMAND, FaultKind.DELAY_SLOT,
     FaultKind.CORRUPT_TRACE, FaultKind.QUEUE_OVERFLOW],
)
def test_reordered_bp_fault_recovery_equivalent(kind):
    """The interval-batched pipeline's fault paths, both engines."""
    _check_faulted("fs_reordered_bp", kind)


def test_triple_alternation_fault_recovery_equivalent():
    _check_faulted("fs_np_ta", FaultKind.DELAY_SLOT)


def test_corrupt_trace_on_baseline_equivalent():
    """Trace corruption applies to every scheme, fast driver included."""
    _check_faulted("baseline", FaultKind.CORRUPT_TRACE)


def test_faulted_run_with_monitor_equivalent():
    """The watchdog must flag the broken recovery identically: same
    violation count, same first-violation shape, under either engine."""
    options = SchemeOptions(
        faults=_plan(FaultKind.BORROW_FOREIGN_SLOT, rate=0.2),
        monitor=True,
    )
    outcomes = run_both("fs_rp", options=options, accesses=100)
    assert_equivalent(outcomes)
    monitor = outcomes["fast"][1].monitor
    assert monitor is not None


def test_multi_fault_campaign_equivalent():
    """Several fault models armed at once (the resilient-sweep setup)."""
    plan = FaultPlan(
        (
            FaultSpec(FaultKind.DROP_COMMAND, 0.05),
            FaultSpec(FaultKind.DELAY_SLOT, 0.05),
            FaultSpec(FaultKind.QUEUE_OVERFLOW, 0.05),
        ),
        seed=13,
    )
    outcomes = run_both(
        "fs_rp", options=SchemeOptions(faults=plan), accesses=100
    )
    assert_equivalent(outcomes)
