"""The content-addressed result store (repro.store).

Pins the acceptance contract of the cross-session cache:

* a warm-cache rerun of an identical sweep executes zero simulation
  jobs (every lookup is a hit) yet produces byte-identical checkpoint
  and metrics-snapshot artifacts to the cold run, serial or parallel;
* ``store=None`` and a corrupted cache entry both fall back to full
  recompute with unchanged outputs;
* keying is canonical (order-insensitive dicts, dataclass fields,
  schema-version salt) and live objects bypass rather than break;
* corrupt entries are evicted with a warning, never raised;
* the CLI surface (``repro store path|ls|verify|gc``, ``--store`` /
  ``--no-store``) round-trips.
"""

import json
import os
import pickle

import pytest

from repro.cli import main
from repro.errors import StoreError
from repro.exec import JobSpec, run_jobs
from repro.sim.config import SystemConfig
from repro.sim.sweep import Sweep
from repro.store import (
    ENTRY_VERSION,
    ResultStore,
    UncacheableValue,
    canonicalize,
    content_key,
    gc,
    iter_entries,
    resolve_store_root,
    verify,
)

CFG = SystemConfig(num_cores=2, accesses_per_core=40)


def _work(payload):
    """Module-level job worker: deterministic plain-data transform."""
    return {"doubled": payload["x"] * 2}


def _boom(payload):
    """Module-level job worker that always fails."""
    raise ValueError("no")


def _collect(results):
    def merge(spec, result, _aux):
        results.append((spec.key, result.ok, result.value))
    return merge


# ----------------------------------------------------------------------
# Keying.
# ----------------------------------------------------------------------

class TestKeys:
    def test_key_is_stable_and_input_sensitive(self):
        a = content_key(_work, {"x": 1, "y": "z"})
        b = content_key(_work, {"y": "z", "x": 1})
        assert a == b  # dict insertion order cannot leak into the key
        assert a != content_key(_work, {"x": 2, "y": "z"})
        assert a != content_key(_boom, {"x": 1, "y": "z"})

    def test_dataclass_and_config_canonicalisation(self):
        key1 = content_key(_work, {"config": CFG, "seed": 0})
        key2 = content_key(_work, {"config": CFG, "seed": 0})
        assert key1 == key2
        assert key1 != content_key(
            _work, {"config": CFG.with_cores(4), "seed": 0}
        )

    def test_live_objects_are_uncacheable(self):
        with pytest.raises(UncacheableValue):
            canonicalize(object())
        store = ResultStore.__new__(ResultStore)  # keying needs no root
        spec = JobSpec(key="k", fn=_work, payload={"x": object()})
        assert store.key_for(spec) is None

    def test_sequences_keep_order_sets_do_not(self):
        assert (canonicalize([1, 2]) != canonicalize([2, 1]))
        assert (canonicalize({1, 2}) == canonicalize({2, 1}))


# ----------------------------------------------------------------------
# The ResultStore object.
# ----------------------------------------------------------------------

class TestResultStore:
    def test_round_trip_and_counters(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        spec = JobSpec(key="j", fn=_work, payload={"x": 21})
        assert store.lookup(spec) is None
        assert store.misses == 1
        raw = {"ok": True, "value": _work(spec.payload)}
        assert store.record(spec, raw)
        assert store.writes == 1
        again = store.lookup(spec)
        assert again == raw
        assert store.hits == 1

    def test_only_successes_are_cached(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        spec = JobSpec(key="j", fn=_boom, payload={"x": 1})
        assert not store.record(
            spec, {"ok": False, "error_type": "ValueError", "error": "no"}
        )
        assert store.lookup(spec) is None
        assert store.writes == 0

    def test_corrupt_entry_is_evicted_not_raised(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        spec = JobSpec(key="j", fn=_work, payload={"x": 3})
        store.record(spec, {"ok": True, "value": _work(spec.payload)})
        path = store.object_path(store.key_for(spec))
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert store.lookup(spec) is None
        assert store.corrupt == 1
        assert not os.path.exists(path)  # evicted
        # and a recompute re-populates it
        store.record(spec, {"ok": True, "value": _work(spec.payload)})
        assert store.lookup(spec) is not None

    def test_version_mismatch_is_a_silent_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        spec = JobSpec(key="j", fn=_work, payload={"x": 4})
        store.record(spec, {"ok": True, "value": _work(spec.payload)})
        key = store.key_for(spec)
        path = store.object_path(key)
        with open(path, "wb") as handle:
            pickle.dump(
                {"version": ENTRY_VERSION + 1, "key": key,
                 "fn": "x", "value": {"ok": True, "value": {}}},
                handle,
            )
        assert store.lookup(spec) is None
        assert store.corrupt == 0  # stale, not corrupt
        assert [e.status for e in verify(str(tmp_path / "cache"))] == [
            "stale"
        ]

    def test_unwritable_root_is_a_store_error(self, tmp_path):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        with pytest.raises(StoreError):
            ResultStore(str(not_a_dir))

    def test_env_var_and_explicit_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env"))
        assert resolve_store_root() == str(tmp_path / "env")
        assert resolve_store_root(str(tmp_path / "x")) == str(
            tmp_path / "x"
        )

    def test_metrics_registry_is_volatile(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        store.lookup(JobSpec(key="j", fn=_work, payload={"x": 1}))
        registry = store.metrics_registry()
        assert registry.snapshot() == {}  # cache state is volatile
        assert "store_lookups_total" in registry.to_prometheus()

    def test_lookup_records_a_store_span(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        store.lookup(JobSpec(key="j", fn=_work, payload={"x": 1}))
        assert [r.category for r in store.tracer.records] == ["store"]
        assert store.tracer.track == "store"


# ----------------------------------------------------------------------
# The run_jobs store hook.
# ----------------------------------------------------------------------

class TestRunnerHook:
    def _jobs(self):
        return [
            JobSpec(key=f"j{i}", fn=_work, payload={"x": i})
            for i in range(4)
        ]

    def test_serial_warm_run_executes_nothing(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        cold, warm = [], []
        run_jobs(self._jobs(), _collect(cold), store=store)
        assert (store.misses, store.writes) == (4, 4)
        store2 = ResultStore(str(tmp_path / "cache"))
        run_jobs(self._jobs(), _collect(warm), store=store2)
        assert (store2.hits, store2.misses) == (4, 0)
        assert warm == cold

    def test_parallel_warm_run_executes_nothing(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        cold, warm = [], []
        run_jobs(self._jobs(), _collect(cold), workers=2, store=store)
        assert (store.misses, store.writes) == (4, 4)
        store2 = ResultStore(str(tmp_path / "cache"))
        run_jobs(self._jobs(), _collect(warm), workers=2, store=store2)
        assert (store2.hits, store2.misses) == (4, 0)
        assert warm == cold

    def test_failures_always_recompute(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        jobs = [JobSpec(key="bad", fn=_boom, payload={"x": 1})]
        out = []
        run_jobs(jobs, _collect(out), store=store)
        assert not out[0][1]
        assert store.writes == 0
        store2 = ResultStore(str(tmp_path / "cache"))
        run_jobs(jobs, _collect(out), store=store2)
        assert store2.misses == 1  # no stale failure served

    def test_aux_jobs_are_cached_too(self, tmp_path):
        aux = {"base": JobSpec(key="base", fn=_work, payload={"x": 10})}
        jobs = [JobSpec(
            key="cell", fn=_work, payload={"x": 1}, requires=("base",),
        )]
        seen = []

        def merge(spec, result, resolve):
            seen.append((result.value, resolve("base").value))

        store = ResultStore(str(tmp_path / "cache"))
        run_jobs(jobs, merge, aux=aux, store=store)
        assert store.writes == 2
        for workers in (1, 2):
            warm = ResultStore(str(tmp_path / "cache"))
            run_jobs(jobs, merge, aux=aux, workers=workers, store=warm)
            assert (warm.hits, warm.misses) == (2, 0)
        assert len({json.dumps(s) for s in seen}) == 1


# ----------------------------------------------------------------------
# The acceptance criterion: warm sweeps replay cold bytes, job-free.
# ----------------------------------------------------------------------

class TestSweepByteIdentity:
    SCHEMES = ["fs_rp", "fcfs"]
    WORKLOADS = ["mcf"]

    def _run(self, tmp_path, name, store, workers=1):
        sweep = Sweep(
            CFG, max_cycles=400_000, workers=workers, store=store,
            checkpoint=str(tmp_path / f"{name}.ckpt.json"),
        )
        sweep.run_grid(self.SCHEMES, self.WORKLOADS, cores=2)
        snapshot = json.dumps(
            sweep.metrics_registry().snapshot(), sort_keys=True
        )
        checkpoint = (tmp_path / f"{name}.ckpt.json").read_bytes()
        return snapshot, checkpoint

    def test_warm_rerun_is_byte_identical_and_job_free(self, tmp_path):
        root = str(tmp_path / "cache")
        cold_store = ResultStore(root)
        cold = self._run(tmp_path, "cold", cold_store)
        jobs = cold_store.misses  # cells + shared baseline aux
        assert cold_store.hits == 0 and cold_store.writes == jobs

        warm_store = ResultStore(root)
        warm = self._run(tmp_path, "warm", warm_store)
        # zero simulation jobs executed: every lookup hit
        assert (warm_store.hits, warm_store.misses) == (jobs, 0)
        assert warm_store.writes == 0
        assert warm == cold

        par_store = ResultStore(root)
        par = self._run(tmp_path, "par", par_store, workers=4)
        assert (par_store.hits, par_store.misses) == (jobs, 0)
        assert par == cold

    def test_no_store_and_cold_parallel_match(self, tmp_path):
        root = str(tmp_path / "cache")
        cold = self._run(tmp_path, "cold", ResultStore(root))
        plain = self._run(tmp_path, "plain", None)
        assert plain == cold
        cold_par = self._run(
            tmp_path, "coldpar", ResultStore(str(tmp_path / "c2")),
            workers=4,
        )
        assert cold_par == cold

    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path):
        root = str(tmp_path / "cache")
        cold = self._run(tmp_path, "cold", ResultStore(root))
        entries = list(iter_entries(root))
        with open(entries[0].path, "wb") as handle:
            handle.write(b"garbage bytes")
        hurt = ResultStore(root)
        again = self._run(tmp_path, "hurt", hurt)
        assert hurt.corrupt == 1 and hurt.misses == 1
        assert hurt.writes == 1  # healed
        assert again == cold
        assert verify(root) == []


# ----------------------------------------------------------------------
# Maintenance helpers and the CLI surface.
# ----------------------------------------------------------------------

class TestMaintenanceAndCli:
    def _populate(self, root, n=3):
        store = ResultStore(root)
        for i in range(n):
            spec = JobSpec(key=f"j{i}", fn=_work, payload={"x": i})
            store.record(spec, {"ok": True, "value": _work(spec.payload)})
        return store

    def test_iter_entries_and_gc(self, tmp_path):
        root = str(tmp_path / "cache")
        self._populate(root)
        entries = list(iter_entries(root))
        assert [e.status for e in entries] == ["ok"] * 3
        with open(entries[0].path, "wb") as handle:
            handle.write(b"junk")
        result = gc(root)  # reaps only the bad entry
        assert (result.removed, result.kept) == (1, 2)
        result = gc(root, everything=True)
        assert result.removed == 2
        assert list(iter_entries(root)) == []

    def test_gc_older_than(self, tmp_path):
        root = str(tmp_path / "cache")
        self._populate(root, n=2)
        entries = list(iter_entries(root))
        os.utime(entries[0].path, (1, 1))  # ancient
        result = gc(root, older_than_s=3600.0)
        assert (result.removed, result.kept) == (1, 1)

    def test_cli_path_ls_verify_gc(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        assert main(["store", "path", "--store", root]) == 0
        assert capsys.readouterr().out.strip() == root
        assert main(["store", "ls", "--store", root]) == 0
        assert "empty" in capsys.readouterr().out
        self._populate(root)
        assert main(["store", "ls", "--store", root]) == 0
        out = capsys.readouterr().out
        assert "3 entries" in out and "_work" in out
        assert main(["store", "verify", "--store", root]) == 0
        entries = list(iter_entries(root))
        with open(entries[0].path, "wb") as handle:
            handle.write(b"junk")
        assert main(["store", "verify", "--store", root]) == 1
        assert "corrupt" in capsys.readouterr().out
        assert main(["store", "gc", "--store", root, "--all"]) == 0
        assert main(["store", "verify", "--store", root]) == 0

    @staticmethod
    def _grid_table(text):
        """The deterministic part of sweep stdout (drops wall clock and
        per-invocation checkpoint paths)."""
        return [
            line for line in text.splitlines()
            if not line.startswith(("grid wall clock", "checkpoint:"))
        ]

    def test_cli_sweep_store_round_trip(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        argv = [
            "sweep", "--schemes", "fs_rp", "--workloads", "mcf",
            "--cores", "2", "--accesses", "40", "--store", root,
        ]
        assert main(argv + ["--checkpoint",
                            str(tmp_path / "a.json")]) == 0
        cold = capsys.readouterr()
        assert main(argv + ["--checkpoint",
                            str(tmp_path / "b.json")]) == 0
        warm = capsys.readouterr()
        assert self._grid_table(cold.out) == self._grid_table(warm.out)
        assert "0 miss(es)" in warm.err
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()
        # --no-store forces a real recompute with identical output
        assert main(argv + ["--no-store", "--checkpoint",
                            str(tmp_path / "c.json")]) == 0
        plain = capsys.readouterr()
        assert self._grid_table(plain.out) == self._grid_table(cold.out)
        assert "store" not in plain.err
        assert (tmp_path / "c.json").read_bytes() == (
            tmp_path / "a.json"
        ).read_bytes()

    def test_cli_run_store_and_bypass(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        argv = ["run", "fs_rp", "mcf", "--cores", "2",
                "--accesses", "40", "--store", root]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "1 hit(s)" in warm.err
        # live-object flags bypass the store entirely
        assert main(argv + ["--monitor"]) == 0
        bypass = capsys.readouterr()
        assert "bypassed" in bypass.err
