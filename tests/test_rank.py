"""Unit tests for rank-level constraints (tRRD, tFAW, turnaround, power)."""

import pytest

from repro.dram.bank import TimingViolation
from repro.dram.commands import Command, CommandType
from repro.dram.rank import PowerState, Rank
from repro.dram.timing import DDR3_1600_X4

P = DDR3_1600_X4


def act(cycle, bank=0, row=5):
    return Command(CommandType.ACTIVATE, cycle, 0, 0, bank, row)


def col(cycle, type_=CommandType.COL_READ_AP, bank=0, row=5):
    return Command(type_, cycle, 0, 0, bank, row)


@pytest.fixture
def rank():
    return Rank(P, num_banks=8)


class TestTRRD:
    def test_gap_between_activates_to_different_banks(self, rank):
        rank.apply(act(0, bank=0))
        assert rank.earliest_activate(0, bank=1) == P.tRRD

    def test_early_activate_rejected(self, rank):
        rank.apply(act(0, bank=0))
        with pytest.raises(TimingViolation):
            rank.apply(act(P.tRRD - 1, bank=1))


class TestTFAW:
    def test_fifth_activate_waits_for_window(self, rank):
        for i in range(4):
            rank.apply(act(i * P.tRRD, bank=i))
        assert rank.earliest_activate(0, bank=4) == P.tFAW

    def test_window_slides(self, rank):
        times = [0, 6, 12, 18, 24]
        for i, t in enumerate(times):
            rank.apply(act(t, bank=i))
        # The next activate is bounded by the window starting at t=6.
        assert rank.earliest_activate(0, bank=5) == 6 + P.tFAW

    def test_early_fifth_activate_rejected(self, rank):
        for i in range(4):
            rank.apply(act(i * P.tRRD, bank=i))
        with pytest.raises(TimingViolation):
            rank.apply(act(P.tFAW - 1, bank=4))


class TestColumnTurnaround:
    def _open(self, rank, bank, cycle):
        rank.apply(act(cycle, bank=bank))

    def test_read_to_read_gap_is_tccd(self, rank):
        self._open(rank, 0, 0)
        self._open(rank, 1, P.tRRD)
        rank.apply(col(P.tRCD, bank=0))
        # Bounded by bank 1's own tRCD (activate at tRRD) here, since
        # tRRD + tRCD > tRCD + tCCD for the Table-1 part.
        assert rank.earliest_column(0, 1, True) == max(
            P.tRCD + P.tCCD, P.tRRD + P.tRCD
        )

    def test_read_to_write_gap(self, rank):
        self._open(rank, 0, 0)
        self._open(rank, 1, P.tRRD)
        rank.apply(col(P.tRCD, bank=0))
        assert (
            rank.earliest_column(0, 1, False)
            == P.tRCD + P.read_to_write
        )

    def test_write_to_read_gap(self, rank):
        self._open(rank, 0, 0)
        self._open(rank, 1, P.tRRD)
        rank.apply(col(P.tRCD, CommandType.COL_WRITE_AP, bank=0))
        assert (
            rank.earliest_column(0, 1, True)
            == P.tRCD + P.write_to_read
        )

    def test_early_column_rejected(self, rank):
        self._open(rank, 0, 0)
        self._open(rank, 1, P.tRRD)
        rank.apply(col(P.tRCD, CommandType.COL_WRITE_AP, bank=0))
        with pytest.raises(TimingViolation):
            rank.apply(col(P.tRCD + P.write_to_read - 1, bank=1))


class TestPowerStates:
    def test_initial_state_precharged(self, rank):
        assert rank.power_state is PowerState.PRECHARGED

    def test_activate_enters_active(self, rank):
        rank.apply(act(0))
        assert rank.power_state is PowerState.ACTIVE

    def test_auto_precharge_returns_to_precharged(self, rank):
        rank.apply(act(0))
        rank.apply(col(P.tRCD))
        assert rank.power_state is PowerState.PRECHARGED

    def test_power_down_with_open_bank_rejected(self, rank):
        rank.apply(act(0))
        with pytest.raises(TimingViolation):
            rank.apply(Command(CommandType.POWER_DOWN, 5, 0, 0))

    def test_power_down_up_cycle(self, rank):
        rank.apply(Command(CommandType.POWER_DOWN, 10, 0, 0))
        assert rank.power_state is PowerState.POWER_DOWN
        rank.apply(Command(CommandType.POWER_UP, 50, 0, 0))
        assert rank.power_state is PowerState.PRECHARGED
        # Exit latency blocks commands.
        assert rank.earliest_activate(50, 0) == 50 + P.tXP

    def test_power_up_without_down_rejected(self, rank):
        with pytest.raises(TimingViolation):
            rank.apply(Command(CommandType.POWER_UP, 5, 0, 0))

    def test_residency_accounting(self, rank):
        rank.apply(act(100))           # precharged 0-100
        rank.apply(col(100 + P.tRCD))  # active 100-111, then precharged
        rank.finalize(200)
        e = rank.energy
        assert e.cycles_precharged + e.cycles_active == 200
        assert e.cycles_active == P.tRCD


class TestEnergyCounters:
    def test_counts_by_type(self, rank):
        rank.apply(act(0))
        rank.apply(col(P.tRCD, CommandType.COL_READ_AP))
        rank.apply(act(P.tRC))
        rank.apply(col(P.tRC + P.tRCD, CommandType.COL_WRITE_AP))
        assert rank.energy.activates == 2
        assert rank.energy.reads == 1
        assert rank.energy.writes == 1


class TestRefresh:
    def test_refresh_needs_all_banks_closed(self, rank):
        rank.apply(act(0))
        assert rank.earliest_refresh(5) >= P.tRAS + P.tRP

    def test_refresh_counts(self, rank):
        rank.apply(Command(CommandType.REFRESH, 10, 0, 0))
        assert rank.energy.refreshes == 1

    def test_early_refresh_rejected(self, rank):
        rank.apply(act(0))
        rank.apply(col(P.tRCD))
        with pytest.raises(TimingViolation):
            rank.apply(Command(CommandType.REFRESH, P.tRCD + 1, 0, 0))
