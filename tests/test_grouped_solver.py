"""Tests for the grouped-pipeline analysis (Section 3, Improving
bandwidth)."""

import pytest

from repro.core.pipeline_solver import (
    GroupedPipeline,
    GroupedPipelineSolver,
    PeriodicMode,
)
from repro.dram.timing import DDR3_1600_X4

P = DDR3_1600_X4


@pytest.fixture
def solver():
    return GroupedPipelineSolver(P)


class TestGroupedPipeline:
    def test_cycles_per_slot(self):
        g = GroupedPipeline(group_size=2, intra_gap=21, inter_gap=7)
        assert g.cycles_per_slot == 14.0

    def test_anchors(self):
        g = GroupedPipeline(group_size=3, intra_gap=5, inter_gap=10)
        assert g.anchors(0) == [0, 5, 10]
        assert g.anchors(1) == [20, 25, 30]


class TestPaperNegativeResult:
    """'Our analysis shows that for our chosen parameters, this did not
    result in a more efficient pipeline.'"""

    def test_grouping_never_beats_plain(self, solver):
        costs = solver.grouping_helps(PeriodicMode.DATA, (2, 3, 4))
        plain = costs[1]
        for n in (2, 3, 4):
            assert costs[n] >= plain, (
                f"group size {n} would beat the plain pipeline — the "
                f"paper's analysis says it cannot for Table 1"
            )

    def test_intra_gap_dominated_by_turnaround(self, solver):
        # Within a group (same rank) the write->read turnaround forces a
        # 21-cycle intra gap — thrice the cross-rank 7.
        g = solver.solve(PeriodicMode.DATA, 2)
        assert g.intra_gap >= P.data_gap(
            same_rank=True, same_type=False, first_is_write=True
        )


class TestGroupedChecker:
    def test_plain_pipeline_is_special_case(self, solver):
        # group size 1 with inter gap 7 = the Figure 1 pipeline.
        assert solver.check(PeriodicMode.DATA, 1, intra_gap=7,
                            inter_gap=7)

    def test_rejects_too_tight_inter_gap(self, solver):
        assert not solver.check(PeriodicMode.DATA, 1, intra_gap=7,
                                inter_gap=5)

    def test_rejects_too_tight_intra_gap(self, solver):
        assert not solver.check(PeriodicMode.DATA, 2, intra_gap=4,
                                inter_gap=7)

    def test_validation(self, solver):
        with pytest.raises(ValueError):
            solver.check(PeriodicMode.DATA, 0, 7, 7)

    def test_unsolvable_raises(self, solver):
        with pytest.raises(RuntimeError):
            solver.solve(PeriodicMode.DATA, 2, max_gap=5)
