"""Unit tests for the promoted covert-channel decoding helpers.

``window_latency_means`` and ``threshold_decode`` were private to
:mod:`repro.analysis.covert`; the certification work promoted them to
the public analysis surface, so their edge cases get pinned here:
all-zero (flat) signals, exact ties at the threshold, out-of-span
requests, and the domain/latency filters.
"""

import pytest

from repro.analysis import threshold_decode, window_latency_means
from repro.analysis.covert import _threshold_decode, \
    _window_latency_means
from repro.dram.commands import Address, OpType, Request


def _req(domain, arrival, release):
    request = Request(
        op=OpType.READ, address=Address(0, 0, 0, 0, 0),
        domain=domain, arrival=arrival,
    )
    request.release = release
    return request


# ---------------------------------------------------------------------
# threshold_decode
# ---------------------------------------------------------------------


def test_decode_empty_signal():
    assert threshold_decode([]) == ()


def test_decode_all_zero_signal():
    """A flat signal carries nothing: everything decodes to 0 (no
    spurious midpoint split of numerical noise)."""
    assert threshold_decode([0.0, 0.0, 0.0, 0.0]) == (0, 0, 0, 0)


def test_decode_flat_nonzero_signal():
    """Flat at *any* level — the FS receiver sees constant latency."""
    assert threshold_decode([37.5] * 6) == (0,) * 6


def test_decode_sub_epsilon_swing_is_flat():
    """Swing below the 1e-9 floor counts as flat, not as signal."""
    means = [100.0, 100.0 + 1e-12, 100.0]
    assert threshold_decode(means) == (0, 0, 0)


def test_decode_tie_at_threshold_is_zero():
    """A window mean exactly *at* the midpoint threshold is not above
    it and must decode to 0 (strict ``>`` comparison)."""
    assert threshold_decode([0.0, 10.0, 5.0]) == (0, 1, 0)


def test_decode_two_clusters():
    means = [12.0, 80.0, 11.0, 79.0, 12.5]
    assert threshold_decode(means) == (0, 1, 0, 1, 0)


def test_decode_single_window():
    """One window is its own min and max: flat, decodes 0."""
    assert threshold_decode([42.0]) == (0,)


# ---------------------------------------------------------------------
# window_latency_means
# ---------------------------------------------------------------------


def test_window_means_empty_release_list():
    assert window_latency_means([], 100, 3) == [0.0, 0.0, 0.0]


def test_window_means_basic_binning():
    released = [
        _req(0, 10, 30),    # window 0, latency 20
        _req(0, 50, 90),    # window 0, latency 40
        _req(0, 150, 160),  # window 1, latency 10
    ]
    assert window_latency_means(released, 100, 3) == [30.0, 10.0, 0.0]


def test_window_means_out_of_span_folds_into_last_window():
    released = [_req(0, 950, 960), _req(0, 10_000, 10_020)]
    means = window_latency_means(released, 100, 4)
    assert means == [0.0, 0.0, 0.0, 15.0]


def test_window_means_filters_foreign_domains_and_unreleased():
    released = [
        _req(1, 10, 30),   # sender traffic: not the receiver's view
        _req(0, 20, None),  # never released: no latency yet
        _req(0, 30, 42),
    ]
    assert window_latency_means(released, 100, 2) == [12.0, 0.0]


def test_window_means_validates_arguments():
    with pytest.raises(ValueError):
        window_latency_means([], 0, 3)
    with pytest.raises(ValueError):
        window_latency_means([], 100, 0)


def test_private_aliases_preserved():
    """The pre-promotion underscore names still resolve (compat)."""
    assert _threshold_decode is threshold_decode
    assert _window_latency_means is window_latency_means
