"""Tests for trace file I/O."""

import io

import pytest

from repro.cpu.trace import Trace, TraceRecord
from repro.dram.commands import OpType
from repro.workloads.spec import workload
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace_io import (
    TraceFormatError,
    dump_trace,
    load_trace,
    round_trip_equal,
)


def small_trace():
    return Trace([
        TraceRecord(10, OpType.READ, 0x100),
        TraceRecord(0, OpType.WRITE, 0x101),
        TraceRecord(5, OpType.READ, 0x2000, depends_on_prev=True),
    ], name="small")


class TestRoundTrip:
    def test_dump_load_identity(self):
        buffer = io.StringIO()
        original = small_trace()
        dump_trace(original, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert round_trip_equal(original, loaded)

    def test_synthetic_round_trip(self):
        original = generate_trace(workload("milc"), 500, seed=3)
        buffer = io.StringIO()
        dump_trace(original, buffer)
        buffer.seek(0)
        assert round_trip_equal(original, load_trace(buffer))

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        original = small_trace()
        dump_trace(original, path)
        loaded = load_trace(path)
        assert round_trip_equal(original, loaded)
        assert loaded.name == path


class TestFormat:
    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n10 R 0x10\n"
        trace = load_trace(io.StringIO(text))
        assert len(trace) == 1

    def test_dependency_flag(self):
        trace = load_trace(io.StringIO("0 R 0x1\n0 R 0x2 D\n"))
        assert not trace[0].depends_on_prev
        assert trace[1].depends_on_prev

    def test_bare_digit_addresses_are_hex(self):
        # The USIMM text format is hex-only: a bare digit run is a hex
        # number (``256`` is 0x256), never decimal.
        trace = load_trace(io.StringIO("0 R 256\n"))
        assert trace[0].line == 0x256

    def test_prefixed_and_bare_forms_agree(self):
        trace = load_trace(io.StringIO("0 R 0x1f\n0 R 1f\n"))
        assert trace[0].line == trace[1].line == 0x1F

    @pytest.mark.parametrize("bad", [
        "R 0x10",             # missing gap
        "x R 0x10",           # bad gap
        "0 Q 0x10",           # bad direction
        "0 R zz",             # bad address
        "0 R 0o17",           # octal prefix is not hex
        "0 R 1_0",            # underscore separators rejected
        "0 R 0x",             # prefix without digits
        "0 R -10",            # negative address
        "0 R 0x10 X",         # bad flag
        "0 R 0x10 D extra",   # too many fields
        "-1 R 0x10",          # negative gap
    ])
    def test_bad_lines_rejected(self, bad):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO(bad + "\n"))

    def test_negative_gap_message_is_precise(self):
        with pytest.raises(TraceFormatError) as info:
            load_trace(io.StringIO("-3 R 0x10\n"))
        assert info.value.reason == "gap must be non-negative, got -3"

    def test_error_reports_line_number_and_reason(self):
        try:
            load_trace(io.StringIO("0 R 0x1\nbroken\n"))
        except TraceFormatError as exc:
            assert exc.line_number == 2
            assert exc.reason == "expected 3 or 4 fields"
        else:  # pragma: no cover
            pytest.fail("expected TraceFormatError")

    def test_trace_format_error_is_trace_error(self):
        from repro.errors import ReproError, TraceError

        assert issubclass(TraceFormatError, TraceError)
        assert issubclass(TraceFormatError, ReproError)
        # Historical call sites caught ValueError; keep that working.
        assert issubclass(TraceFormatError, ValueError)


class TestRoundTripEqual:
    def test_detects_length_mismatch(self):
        a = small_trace()
        b = Trace(a.records[:-1])
        assert not round_trip_equal(a, b)

    def test_detects_field_mismatch(self):
        a = small_trace()
        b = Trace([
            TraceRecord(10, OpType.READ, 0x100),
            TraceRecord(0, OpType.READ, 0x101),   # W flipped to R
            TraceRecord(5, OpType.READ, 0x2000, depends_on_prev=True),
        ])
        assert not round_trip_equal(a, b)
