"""Tests for trace file I/O."""

import io

import pytest

from repro.cpu.trace import Trace, TraceRecord
from repro.dram.commands import OpType
from repro.workloads.spec import workload
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace_io import (
    TraceFormatError,
    dump_trace,
    load_trace,
    round_trip_equal,
)


def small_trace():
    return Trace([
        TraceRecord(10, OpType.READ, 0x100),
        TraceRecord(0, OpType.WRITE, 0x101),
        TraceRecord(5, OpType.READ, 0x2000, depends_on_prev=True),
    ], name="small")


class TestRoundTrip:
    def test_dump_load_identity(self):
        buffer = io.StringIO()
        original = small_trace()
        dump_trace(original, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert round_trip_equal(original, loaded)

    def test_synthetic_round_trip(self):
        original = generate_trace(workload("milc"), 500, seed=3)
        buffer = io.StringIO()
        dump_trace(original, buffer)
        buffer.seek(0)
        assert round_trip_equal(original, load_trace(buffer))

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        original = small_trace()
        dump_trace(original, path)
        loaded = load_trace(path)
        assert round_trip_equal(original, loaded)
        assert loaded.name == path


class TestFormat:
    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n10 R 0x10\n"
        trace = load_trace(io.StringIO(text))
        assert len(trace) == 1

    def test_dependency_flag(self):
        trace = load_trace(io.StringIO("0 R 0x1\n0 R 0x2 D\n"))
        assert not trace[0].depends_on_prev
        assert trace[1].depends_on_prev

    def test_decimal_addresses_accepted(self):
        trace = load_trace(io.StringIO("0 R 256\n"))
        assert trace[0].line == 256

    @pytest.mark.parametrize("bad", [
        "R 0x10",             # missing gap
        "x R 0x10",           # bad gap
        "0 Q 0x10",           # bad direction
        "0 R zz",             # bad address
        "0 R 0x10 X",         # bad flag
        "0 R 0x10 D extra",   # too many fields
        "-1 R 0x10",          # negative gap
    ])
    def test_bad_lines_rejected(self, bad):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO(bad + "\n"))

    def test_error_reports_line_number(self):
        try:
            load_trace(io.StringIO("0 R 0x1\nbroken\n"))
        except TraceFormatError as exc:
            assert exc.line_number == 2
        else:  # pragma: no cover
            pytest.fail("expected TraceFormatError")


class TestRoundTripEqual:
    def test_detects_length_mismatch(self):
        a = small_trace()
        b = Trace(a.records[:-1])
        assert not round_trip_equal(a, b)

    def test_detects_field_mismatch(self):
        a = small_trace()
        b = Trace([
            TraceRecord(10, OpType.READ, 0x100),
            TraceRecord(0, OpType.READ, 0x101),   # W flipped to R
            TraceRecord(5, OpType.READ, 0x2000, depends_on_prev=True),
        ])
        assert not round_trip_equal(a, b)
