"""Property tests for the certification estimators (Hypothesis).

The statistical certificates only mean something if the estimator obeys
information theory on *every* input, not just the ones the harness
happens to produce.  Pinned properties:

* MI estimates are non-negative and bounded by ``log2(|S|)``;
* MI is invariant under bijective relabeling of observations (ids are
  arbitrary — only the partition structure may matter);
* a sample set with product structure (empirical joint = product of
  marginals) estimates *zero* MI, and the bias correction never pushes
  an independent pair above the certification epsilon;
* the correction only ever subtracts (corrected <= plug-in), and the
  bootstrap bound only ever adds (upper >= point);
* the bootstrap is a pure function of its seed.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.certify import (
    binary_channel_capacity,
    bootstrap_upper_bound,
    canonicalize_by_trial,
    corrected_mi_bits,
    miller_madow_bias_bits,
    support_sizes,
)
from repro.analysis.mutual_information import mutual_information_bits

#: The CLI's default certification tolerance.
EPSILON = 0.01

#: (secret, observation) sample lists: binary secrets, small
#: observation alphabets, 1..60 samples.
samples_lists = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 5)),
    min_size=1, max_size=60,
)


@given(samples_lists)
@settings(max_examples=200, deadline=None)
def test_mi_bounds(samples):
    """0 <= corrected <= plug-in <= log2(|S|)."""
    plugin = mutual_information_bits(samples)
    corrected = corrected_mi_bits(samples)
    k_s, _ = support_sizes(samples)
    assert 0.0 <= corrected <= plugin + 1e-12
    assert plugin <= math.log2(max(k_s, 2)) + 1e-9
    if k_s == 1:
        assert plugin <= 1e-12  # one secret: nothing to learn


@given(samples_lists, st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_mi_invariant_under_observation_relabeling(samples, rng):
    """Bijectively renaming observations changes nothing: the ids the
    canonicalizer assigns are arbitrary, only the induced partition of
    samples carries information."""
    alphabet = sorted({o for _, o in samples})
    shuffled = alphabet[:]
    rng.shuffle(shuffled)
    relabel = dict(zip(alphabet, shuffled))
    renamed = [(s, relabel[o]) for s, o in samples]
    assert math.isclose(
        mutual_information_bits(samples),
        mutual_information_bits(renamed),
        abs_tol=1e-9,
    )
    assert math.isclose(
        corrected_mi_bits(samples),
        corrected_mi_bits(renamed),
        abs_tol=1e-9,
    )


@given(
    st.lists(st.integers(0, 1), min_size=1, max_size=6),
    st.lists(st.integers(0, 4), min_size=1, max_size=6),
)
@settings(max_examples=200, deadline=None)
def test_independent_pair_stays_below_epsilon(secrets, observations):
    """Product-structured samples (every secret paired with every
    observation) have empirical joint = product of marginals, so the
    plug-in MI is exactly zero — and the bias correction, which only
    subtracts, must keep an independent pair certifiable."""
    samples = [(s, o) for s in secrets for o in observations]
    assert mutual_information_bits(samples) <= 1e-12
    assert corrected_mi_bits(samples) == 0.0 <= EPSILON
    assert bootstrap_upper_bound(samples, resamples=0) <= EPSILON


@given(samples_lists, st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_bootstrap_bound_dominates_point_and_is_seeded(samples, seed):
    """upper >= point, and the bound is a pure function of its seed."""
    point = corrected_mi_bits(samples)
    upper = bootstrap_upper_bound(samples, resamples=25, seed=seed)
    again = bootstrap_upper_bound(samples, resamples=25, seed=seed)
    assert upper >= point
    assert upper == again


@given(st.integers(1, 10_000), st.integers(1, 8), st.integers(1, 64))
@settings(max_examples=200, deadline=None)
def test_bias_term_nonnegative_and_shrinks_with_n(n, k_s, k_o):
    bias = miller_madow_bias_bits(n, k_s, k_o)
    assert bias >= 0.0
    assert miller_madow_bias_bits(2 * n, k_s, k_o) <= bias + 1e-15
    if k_s == 1 or k_o == 1:
        assert bias == 0.0  # degenerate alphabet: the FS case


@given(samples_lists)
@settings(max_examples=100, deadline=None)
def test_capacity_bounds(samples):
    """Capacity of an empirical binary channel lives in [0, 1], and a
    perfectly distinguishing sample set achieves exactly 1 bit."""
    capacity = binary_channel_capacity(samples)
    assert 0.0 <= capacity <= 1.0 + 1e-9


def test_capacity_of_perfect_channel_is_one_bit():
    samples = [(0, "a"), (0, "a"), (1, "b")]
    assert math.isclose(
        binary_channel_capacity(samples), 1.0, abs_tol=1e-6
    )


def test_capacity_of_useless_channel_is_zero():
    samples = [(0, "a"), (1, "a"), (0, "a"), (1, "a")]
    assert binary_channel_capacity(samples) <= 1e-9


def test_estimator_argument_validation():
    import pytest

    with pytest.raises(ValueError):
        miller_madow_bias_bits(0, 2, 2)
    with pytest.raises(ValueError):
        bootstrap_upper_bound([(0, 0)], quantile=1.0)
    with pytest.raises(ValueError):
        binary_channel_capacity([(0, "a"), (1, "b"), (2, "c")])


@given(
    st.lists(
        st.tuples(
            st.integers(0, 3),   # trial
            st.integers(0, 1),   # secret
            st.text(max_size=3),  # raw observation
        ),
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_canonicalize_preserves_partition_structure(raw):
    """Canonical ids preserve within-trial equality of observations
    exactly — two raw triples in the same trial get the same id iff
    their observations were equal."""
    out = canonicalize_by_trial(raw)
    assert len(out) == len(raw)
    for i, (trial_i, secret_i, obs_i) in enumerate(raw):
        assert out[i][0] == secret_i
        for j, (trial_j, _, obs_j) in enumerate(raw):
            if trial_i == trial_j:
                assert (out[i][1] == out[j][1]) == (obs_i == obs_j)


def test_canonicalize_exact_noninterference_collapses_alphabet():
    """Matching worlds in every trial give the singleton alphabet —
    and therefore exactly-zero MI with zero bias correction."""
    raw = [
        (t, secret, f"obs-{t}") for t in range(5) for secret in (0, 1)
    ]
    samples = canonicalize_by_trial(raw)
    assert support_sizes(samples) == (2, 1)
    assert corrected_mi_bits(samples) == 0.0
    assert bootstrap_upper_bound(samples, resamples=50) == 0.0
