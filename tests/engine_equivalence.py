"""Shared machinery for the engine-equivalence (differential) suites.

The fast-path engine (:mod:`repro.sim.fastpath`) claims to be
*observationally identical* to the cycle-stepping reference: same command
trace, same completion times, same statistics, same energy — for every
scheme, with and without fault injection.  The helpers here run one
configuration under both engines and assert that claim field by field.

Used by ``tests/test_differential.py`` (scheme/option matrix) and
``tests/test_fastpath_faults.py`` (fault-model matrix).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.sim.config import SystemConfig
from repro.sim.runner import SchemeOptions, build_system
from repro.workloads.spec import suite_specs

#: Generous per-run bound; every differential case finishes far below it.
MAX_CYCLES = 6_000_000


def run_both(
    scheme: str,
    workload: str = "mix1",
    cores: int = 8,
    accesses: int = 120,
    options: Optional[SchemeOptions] = None,
    seed: int = 0,
) -> Dict[str, Tuple]:
    """Run one configuration under both engines.

    Returns ``{engine: (RunResult, controller)}``; the controller is kept
    so callers can compare command logs and monitor verdicts.  Command
    logging is forced on, making the bit-identical-trace assertion
    meaningful for every case.
    """
    options = dataclasses.replace(
        options or SchemeOptions(), log_commands=True
    )
    outcomes: Dict[str, Tuple] = {}
    for engine in ("reference", "fast"):
        config = SystemConfig(accesses_per_core=accesses, seed=seed)
        if cores != config.num_cores:
            # Keeps accesses_per_core and seed (the Figure 10 scaling).
            config = config.with_cores(cores)
        system = build_system(
            scheme, config, suite_specs(workload, cores), options,
            engine=engine,
        )
        result = system.run(max_cycles=MAX_CYCLES)
        outcomes[engine] = (result, system.controller)
    return outcomes


def assert_equivalent(outcomes: Dict[str, Tuple]) -> None:
    """Assert the two engines produced bit-identical observables."""
    ref, ref_ctl = outcomes["reference"]
    fast, fast_ctl = outcomes["fast"]
    assert fast.cycles == ref.cycles, (
        f"run length diverged: reference {ref.cycles} vs fast "
        f"{fast.cycles}"
    )
    for f in dataclasses.fields(type(ref.stats)):
        r = getattr(ref.stats, f.name)
        x = getattr(fast.stats, f.name)
        assert x == r, f"stats.{f.name}: reference {r} vs fast {x}"
    assert fast.service_trace == ref.service_trace, \
        "per-domain service traces diverged"
    assert fast.bus_utilization == ref.bus_utilization
    assert fast.energy == ref.energy, "energy breakdown diverged"
    assert fast.adjustments == ref.adjustments
    assert fast.cores == ref.cores, "per-core results diverged"
    # The headline claim: the very command stream is bit-identical.
    # ``request_id`` is drawn from a process-global counter (the second
    # run of the pair starts higher), so it is projected out; everything
    # the bus, the timing checker, and the security invariants see —
    # type, cycle, geometry, domain — must match exactly, in order.
    assert _trace(fast_ctl) == _trace(ref_ctl), "command traces diverged"
    ref_mon = getattr(ref_ctl, "monitor", None)
    fast_mon = getattr(fast_ctl, "monitor", None)
    assert (ref_mon is None) == (fast_mon is None)
    if ref_mon is not None:
        assert fast_mon.total_violations == ref_mon.total_violations
        assert fast_mon.violations == ref_mon.violations


def _trace(controller) -> list:
    """The command log minus the process-global ``request_id``."""
    return [
        (c.type, c.cycle, c.channel, c.rank, c.bank, c.row, c.domain)
        for c in controller.command_log
    ]


def check(scheme: str, **kwargs) -> None:
    """Run + assert in one call (the common case)."""
    assert_equivalent(run_both(scheme, **kwargs))
