"""Differential equivalence suite: fast engine vs reference simulator.

The headline asset of the fast-path work (``repro.sim.fastpath``): every
scheme family from the paper is simulated under both engines and must
produce **bit-identical** command traces, completion times, statistics,
service traces, energy, and per-core results.

Covered families (paper nomenclature):

* non-secure FR-FCFS baseline (open page, write drain) and strict FCFS
* channel partitioning (Section 4.1)
* Temporal Partitioning, bank-partitioned and unpartitioned
* Fixed Service rank partitioning (periodic data pipeline, l=7),
  single- and multi-channel
* Fixed Service bank partitioning (periodic RAS, l=15; l=21 with
  doubled per-domain slots)
* Fixed Service unpartitioned (l=43) and triple alternation (Q=360)
* Fixed Service reordered bank partitioning (Q=63)

plus the option axes the benchmarks exercise: refresh, prefetching,
energy optimizations, slot multiplicity, turn length, address-order
remapping, and the online invariant monitor.  Fault-injection cases live
in ``tests/test_fastpath_faults.py``.
"""

import json

import pytest

from repro.sim.config import SystemConfig
from repro.sim.runner import SCHEMES, SchemeOptions, run_scheme
from repro.telemetry import TelemetrySession, TraceCollector
from repro.workloads.spec import suite_specs

from .engine_equivalence import check

# Every scheme the runner knows, on two contrasting workloads: a mixed
# multiprogrammed bundle and a homogeneous memory-intensive one.
_ALL_SCHEMES = list(SCHEMES)


@pytest.mark.parametrize("scheme", _ALL_SCHEMES)
def test_scheme_equivalent_mixed_workload(scheme):
    check(scheme, workload="mix1")


@pytest.mark.parametrize(
    "scheme",
    ["baseline", "tp_bp", "fs_rp", "fs_bp", "fs_reordered_bp",
     "fs_np_ta"],
)
def test_scheme_equivalent_intense_workload(scheme):
    check(scheme, workload="mcf", accesses=100)


@pytest.mark.parametrize("cores", [2, 4])
@pytest.mark.parametrize(
    "scheme", ["baseline", "fs_rp", "fs_reordered_bp", "tp_bp"]
)
def test_scheme_equivalent_scaled_cores(scheme, cores):
    """The Figure 10 core-count scaling grid, both engines."""
    check(scheme, workload="libquantum", cores=cores, accesses=100)


def test_seed_changes_tracked_identically():
    """A different trace seed must shift both engines the same way."""
    check("fs_rp", workload="milc", seed=17, accesses=100)


# ---------------------------------------------------------------------
# Option axes.
# ---------------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["baseline", "fs_rp"])
def test_refresh_equivalent(scheme):
    check(scheme, options=SchemeOptions(refresh=True), accesses=100)


def test_prefetch_equivalent():
    check("fs_rp", options=SchemeOptions(prefetch=True), accesses=100)


def test_energy_options_equivalent():
    from repro.core.energy_opts import FsEnergyOptions

    options = SchemeOptions(energy=FsEnergyOptions(
        suppress_dummies=True, boost_row_hits=True, power_down_idle=True,
    ))
    for scheme in ("fs_rp", "fs_reordered_bp"):
        check(scheme, options=options, accesses=100)


def test_double_slots_equivalent():
    """FS bank partitioning with two slots per domain (l=21 pipeline)."""
    check("fs_bp", options=SchemeOptions(slots_per_domain=2),
          accesses=100)


def test_turn_length_equivalent():
    check("tp_bp", options=SchemeOptions(turn_length=96), accesses=100)


def test_address_order_equivalent():
    """Triple alternation with bank-interleaved page mapping."""
    options = SchemeOptions(
        address_order=("row", "column", "rank", "channel", "bank")
    )
    check("fs_np_ta", options=options, accesses=100)


@pytest.mark.parametrize(
    "scheme", ["fs_rp", "fs_reordered_bp", "fs_np_ta"]
)
def test_monitor_equivalent(scheme):
    """The online watchdog sees the same command stream either way."""
    check(scheme, options=SchemeOptions(monitor=True), accesses=100)


# ---------------------------------------------------------------------
# Telemetry determinism.
# ---------------------------------------------------------------------


@pytest.mark.parametrize(
    "scheme",
    ["baseline", "fcfs", "tp_bp", "fs_rp", "fs_bp", "fs_reordered_bp",
     "fs_np_ta", "fs_rp_mc"],
)
def test_metrics_snapshot_equivalent_across_engines(scheme):
    """Full telemetry under both engines yields identical snapshots.

    A fresh :class:`TelemetrySession` (registry + trace collector +
    profiler) is attached per engine — sessions accumulate, so sharing
    one across engines would double every counter.  The comparable
    snapshot excludes volatile (wall-clock / engine-internal) metrics;
    everything else — service counters, command counters, harvested
    stats/energy/core gauges, cadence histograms — must serialize
    bit-identically, as must the event streams.  The one carve-out is
    the "queues" trace track: queue occupancy sampled at service time
    depends on whether a same-cycle arrival has been enqueued yet,
    which is an engine-interleaving artifact (the matching gauge is
    flagged volatile for the same reason).
    """
    snapshots = {}
    events = {}
    for engine in ("reference", "fast"):
        session = TelemetrySession(
            collector=TraceCollector(), profile=True
        )
        options = SchemeOptions(telemetry=session, monitor=True)
        config = SystemConfig(accesses_per_core=100)
        run_scheme(
            scheme, config, suite_specs("mix1", config.num_cores),
            options, engine=engine,
        )
        snapshots[engine] = json.dumps(
            session.registry.snapshot(), sort_keys=True
        )
        events[engine] = [
            e for e in session.collector.events() if e.pid != "queues"
        ]
    assert snapshots["fast"] == snapshots["reference"], \
        "metrics snapshots diverged between engines"
    assert events["fast"] == events["reference"], \
        "trace event streams diverged between engines"


# ---------------------------------------------------------------------
# Span tracing stays inert.
# ---------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("scheme", ["fs_rp", "baseline"])
def test_spans_armed_vs_disarmed_identical(scheme, engine):
    """Arming the span tracer changes no simulated observable: the
    comparable metrics snapshot and every run observable are
    byte-identical with and without spans, on both engines — and the
    armed run actually recorded the engine's span tree."""
    from repro.telemetry import SpanTracer

    outputs = {}
    for armed in (False, True):
        tracer = SpanTracer() if armed else None
        session = TelemetrySession(
            collector=TraceCollector(), tracer=tracer
        )
        config = SystemConfig(accesses_per_core=100)
        result = run_scheme(
            scheme, config, suite_specs("mix1", config.num_cores),
            SchemeOptions(telemetry=session), engine=engine,
        )
        outputs[armed] = (
            json.dumps(session.registry.snapshot(), sort_keys=True),
            [e for e in session.collector.events()
             if e.pid != "queues"],
            result.cycles,
            result.service_trace,
            result.cores,
        )
        if armed:
            categories = {r.category for r in tracer.records}
            assert {"run", "phase", "epoch"} <= categories
    assert outputs[True] == outputs[False], \
        "arming span tracing perturbed the run"


# ---------------------------------------------------------------------
# Certification equivalence.
# ---------------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["fs_rp", "baseline"])
def test_certification_verdicts_equivalent_across_engines(scheme):
    """The same strategy seed yields the *identical* certificate on
    both engines — verdict, exact-match flag, and every MI/capacity
    number, byte for byte once serialized.

    This is what makes the fast engine a legitimate certification
    backend: a scheme cannot pass on one engine and fail on the other,
    in either direction (fs_rp certifies on both; the baseline leaks
    identically on both).
    """
    import dataclasses

    from repro.certify import certify_scheme, generate_strategies

    config = SystemConfig(num_cores=4, accesses_per_core=80) \
        .with_cores(4)
    strategies = [
        dataclasses.replace(s, trials=2)
        for s in generate_strategies(3, seed=23)
    ]
    serialized = {}
    for engine in ("reference", "fast"):
        certificate = certify_scheme(
            scheme, strategies, config=config, engine=engine
        )
        serialized[engine] = json.dumps(
            [v.to_json_dict() for v in certificate.verdicts]
            + [certificate.summary_dict()["certificate"]["certified"],
               certificate.summary_dict()["certificate"]["scheme"]],
            sort_keys=True,
        )
        assert certificate.certified == (scheme == "fs_rp")
    assert serialized["fast"] == serialized["reference"], \
        "certification verdicts diverged between engines"
