"""A controller that hard-kills its process: sweep crash-isolation prop.

The multiprocess sweep must survive a worker dying *without* raising —
not an exception the worker can catch and report, but ``os._exit``,
which models a segfault or an OOM-kill and breaks the whole
``ProcessPoolExecutor``.  The kill is gated on an environment variable
(inherited by spawn children) so the same registered scheme runs
normally once the variable is cleared — which is exactly what the
resume-from-checkpoint test does.
"""

import os

from repro.controllers.fcfs import FcfsController

#: Environment switch: "1" arms the crash (spawn workers inherit it).
CRASH_ENV = "REPRO_TEST_CRASH"


class CrashingFcfsController(FcfsController):
    """Strict FCFS that dies hard at construction when armed."""

    def __init__(self, *args, **kwargs):
        if os.environ.get(CRASH_ENV) == "1":
            os._exit(3)  # no exception, no cleanup: a hard worker death
        super().__init__(*args, **kwargs)


def crashing_job(payload):
    """A substrate job (:mod:`repro.exec`) that dies hard when armed.

    Module-level and picklable, so the generic kill/resume property
    tests can fan it through ``run_jobs`` at any worker count; disarmed,
    it returns a deterministic value so a resumed batch completes.
    """
    if os.environ.get(CRASH_ENV) == "1":
        os._exit(3)
    return {"value": payload["x"] * 10}
