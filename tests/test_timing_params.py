"""Unit tests for DDR3 timing parameters (Table 1)."""

import pytest

from repro.dram.timing import (
    ClockDomain,
    DDR3_1066,
    DDR3_1600_X4,
    DEFAULT_CLOCK,
    TimingParams,
)


class TestTable1Values:
    """The default part must be exactly the paper's Table 1."""

    def test_row_timing(self):
        p = DDR3_1600_X4
        assert (p.tRC, p.tRCD, p.tRAS, p.tRP) == (39, 11, 28, 11)

    def test_column_timing(self):
        p = DDR3_1600_X4
        assert (p.tCAS, p.tCWD, p.tBURST, p.tCCD) == (11, 5, 4, 4)

    def test_rank_timing(self):
        p = DDR3_1600_X4
        assert (p.tFAW, p.tRRD, p.tWTR, p.tWR) == (24, 5, 6, 12)

    def test_bus_timing(self):
        p = DDR3_1600_X4
        assert (p.tRTRS, p.tRTP) == (2, 6)

    def test_refresh_timing(self):
        # 7.8 us and 260 ns at 1.25 ns per cycle.
        assert DDR3_1600_X4.tREFI == 6240
        assert DDR3_1600_X4.tRFC == 208


class TestCompoundDelays:
    """The derived quantities the paper's equations use."""

    def test_read_to_write_is_10(self):
        assert DDR3_1600_X4.read_to_write == 10

    def test_write_to_read_is_15(self):
        assert DDR3_1600_X4.write_to_read == 15

    def test_read_act_offset_is_22(self):
        assert DDR3_1600_X4.read_act_offset == 22

    def test_write_act_offset_is_16(self):
        assert DDR3_1600_X4.write_act_offset == 16

    def test_same_bank_write_turnaround_is_43(self):
        assert DDR3_1600_X4.write_turnaround_same_bank == 43


class TestDataGap:
    def test_cross_rank_gap_includes_trtrs(self):
        p = DDR3_1600_X4
        assert p.data_gap(same_rank=False, same_type=True,
                          first_is_write=False) == 6

    def test_same_rank_same_type_gap_is_burst(self):
        p = DDR3_1600_X4
        assert p.data_gap(same_rank=True, same_type=True,
                          first_is_write=False) == 4

    def test_same_rank_write_to_read_gap(self):
        p = DDR3_1600_X4
        # Write data to read data: Wr2Rd shifted by the CWD/CAS offsets.
        assert p.data_gap(same_rank=True, same_type=False,
                          first_is_write=True) == 21

    def test_same_rank_read_to_write_gap(self):
        p = DDR3_1600_X4
        assert p.data_gap(same_rank=True, same_type=False,
                          first_is_write=False) == 4


class TestValidation:
    def test_trc_must_cover_tras_plus_trp(self):
        with pytest.raises(ValueError, match="tRC"):
            TimingParams(tRC=30, tRAS=28, tRP=11)

    def test_rejects_nonpositive_parameter(self):
        with pytest.raises(ValueError):
            TimingParams(tBURST=0)

    def test_scaled_override(self):
        p = DDR3_1600_X4.scaled(tRTRS=4)
        assert p.tRTRS == 4
        assert p.tCAS == DDR3_1600_X4.tCAS

    def test_frozen(self):
        with pytest.raises(Exception):
            DDR3_1600_X4.tCAS = 10  # type: ignore[misc]

    def test_alternate_part_is_valid(self):
        assert DDR3_1066.tRC >= DDR3_1066.tRAS + DDR3_1066.tRP


class TestClockDomain:
    def test_default_ratio(self):
        assert DEFAULT_CLOCK.cpu_per_mem_cycle == 4

    def test_cpu_cycles(self):
        assert DEFAULT_CLOCK.cpu_cycles(56) == 224  # the paper's Q

    def test_ns(self):
        assert DEFAULT_CLOCK.ns(8) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ClockDomain(cpu_per_mem_cycle=0)
        with pytest.raises(ValueError):
            ClockDomain(mem_cycle_ns=0.0)
