"""Tests for the multi-channel DRAM system wrapper."""

import pytest

from repro.dram.channel import Channel
from repro.dram.commands import Command, CommandType
from repro.dram.system import DramSystem
from repro.dram.timing import DDR3_1600_X4

P = DDR3_1600_X4


class TestGeometry:
    def test_defaults(self):
        dram = DramSystem(P)
        assert dram.num_channels == 1
        assert dram.ranks_per_channel == 8
        assert dram.banks_per_rank == 8
        assert dram.total_banks == 64

    def test_multi_channel(self):
        dram = DramSystem(P, num_channels=4)
        assert dram.num_channels == 4
        assert dram.total_banks == 256
        assert all(
            ch.channel_id == i for i, ch in enumerate(dram.channels)
        )

    def test_needs_a_channel(self):
        with pytest.raises(ValueError):
            DramSystem(P, num_channels=0)


class TestChannelIndependence:
    def test_same_cycle_on_different_channels_ok(self):
        dram = DramSystem(P, num_channels=2)
        for ch in range(2):
            dram.channels[ch].issue(Command(
                CommandType.ACTIVATE, 10, ch, 0, 0, row=1
            ))
        assert dram.channels[0].stat_commands == 1
        assert dram.channels[1].stat_commands == 1

    def test_utilization_averages_channels(self):
        dram = DramSystem(P, num_channels=2)
        ch0 = dram.channels[0]
        ch0.issue(Command(CommandType.ACTIVATE, 0, 0, 0, 0, row=1))
        ch0.issue(Command(CommandType.COL_READ_AP, P.tRCD, 0, 0, 0,
                          row=1))
        # One burst on one of two channels over 100 cycles.
        assert dram.bus_utilization(100) == pytest.approx(
            P.tBURST / 200
        )
        assert dram.total_data_cycles() == P.tBURST

    def test_finalize_closes_all_power_accounting(self):
        dram = DramSystem(P, num_channels=2)
        dram.finalize(1000)
        for channel in dram.channels:
            for rank in channel.ranks:
                assert rank.energy.total_cycles() == 1000
