"""Tests for the Temporal Partitioning controller (prior work)."""

import random

import pytest

from repro.controllers.tp import (
    TemporalPartitioningController,
    default_dead_time,
    min_turn_length,
)
from repro.dram.checker import TimingChecker
from repro.dram.commands import OpType, Request
from repro.dram.system import DramSystem
from repro.dram.timing import DDR3_1600_X4
from repro.mapping.address import Geometry
from repro.mapping.partition import BankPartition, NoPartition

P = DDR3_1600_X4
G = Geometry()


def make(turn_length=60, bank_partitioned=True, num_domains=8):
    dram = DramSystem(P)
    part = (
        BankPartition(G, num_domains) if bank_partitioned
        else NoPartition(G, num_domains)
    )
    ctrl = TemporalPartitioningController(
        dram, num_domains, turn_length=turn_length,
        bank_partitioned=bank_partitioned, log_commands=True,
    )
    return ctrl, part


def drive(ctrl, requests):
    requests = sorted(requests, key=lambda r: r.arrival)
    released, clock, idx = [], 0, 0
    while idx < len(requests) or ctrl.pending() or ctrl._release_heap:
        nxt = ctrl.next_event()
        arr = requests[idx].arrival if idx < len(requests) else None
        cands = [c for c in (nxt, arr) if c is not None]
        if not cands:
            break
        clock = max(clock + 1, min(cands))
        while idx < len(requests) and requests[idx].arrival <= clock:
            ctrl.enqueue(requests[idx])
            idx += 1
        released += ctrl.advance(clock)
    return released, clock


class TestDeadTime:
    def test_bank_partitioned_dead_time(self):
        # tFAW - tRCD - 1 = 12 cycles: numerically the "12 ns" Wang et
        # al. quote for bank-partitioned TP.
        assert default_dead_time(P, True) == P.tFAW - P.tRCD - 1 == 12

    def test_no_partition_dead_time(self):
        # Write-recovery carry-over: tCWD + tBURST + tWR + tRP - 1 = 31.
        assert default_dead_time(P, False) == 31

    def test_np_dead_time_exceeds_bp(self):
        assert default_dead_time(P, False) > default_dead_time(P, True)

    def test_turn_must_exceed_dead_time(self):
        dram = DramSystem(P)
        with pytest.raises(ValueError):
            TemporalPartitioningController(
                dram, 8, turn_length=10, bank_partitioned=True
            )

    def test_min_turn_length_is_constructible(self):
        dram = DramSystem(P)
        TemporalPartitioningController(
            dram, 8, turn_length=min_turn_length(P, True)
        )


class TestTurnOwnership:
    def test_round_robin(self):
        ctrl, _ = make(turn_length=60)
        assert ctrl.turn_of(0)[0] == 0
        assert ctrl.turn_of(60)[0] == 1
        assert ctrl.turn_of(8 * 60)[0] == 0

    def test_issue_deadline(self):
        ctrl, _ = make(turn_length=60)
        _, start, deadline = ctrl.turn_of(130)
        assert start == 120 and deadline == 120 + 60 - ctrl.dead_time

    def test_next_turn_start(self):
        ctrl, _ = make(turn_length=60)
        assert ctrl.next_turn_start(0, 0) == 0
        assert ctrl.next_turn_start(1, 0) == 60
        assert ctrl.next_turn_start(0, 70) == 480

    def test_transactions_start_only_in_own_turn(self):
        ctrl, part = make(turn_length=60)
        rng = random.Random(2)
        reqs = []
        t = 0
        for _ in range(200):
            d = rng.randrange(8)
            line = rng.randrange(10_000)
            op = OpType.READ if rng.random() < 0.7 else OpType.WRITE
            reqs.append(Request(op=op, address=part.decode(d, line),
                                domain=d, arrival=t, line=line))
            t += rng.randrange(0, 10)
        drive(ctrl, reqs)
        for domain, events in ctrl.service_trace.items():
            for cycle, _ in events:
                owner, start, deadline = ctrl.turn_of(cycle)
                assert owner == domain
                assert cycle < deadline


class TestCorrectness:
    @pytest.mark.parametrize("bank_partitioned,turn", [
        (True, 60), (True, 156), (False, 172), (False, 268),
    ])
    def test_all_reads_complete_and_legal(self, bank_partitioned, turn):
        ctrl, part = make(turn, bank_partitioned)
        rng = random.Random(9)
        reqs = []
        t = 0
        for _ in range(250):
            d = rng.randrange(8)
            line = rng.randrange(10_000)
            op = OpType.READ if rng.random() < 0.7 else OpType.WRITE
            reqs.append(Request(op=op, address=part.decode(d, line),
                                domain=d, arrival=t, line=line))
            t += rng.randrange(0, 8)
        released, _ = drive(ctrl, reqs)
        assert len(released) == sum(1 for r in reqs if r.is_read)
        assert TimingChecker(P).check(ctrl.command_log) == []


class TestQueuingBehaviour:
    def test_wait_for_turn_dominates_latency(self):
        """A lone request from domain 7 waits most of a rotation."""
        ctrl, part = make(turn_length=60)
        # Arrive just after domain 7's turn ended.
        arrival = 8 * 60  # start of domain 0's second rotation
        req = Request(op=OpType.READ, address=part.decode(7, 42),
                      domain=7, arrival=arrival, line=42)
        released, _ = drive(ctrl, [req])
        assert released[0].latency >= 7 * 60 - 60

    def test_longer_turns_hurt_single_thread_latency(self):
        lat = {}
        for turn in (60, 156):
            ctrl, part = make(turn_length=turn)
            req = Request(op=OpType.READ, address=part.decode(3, 7),
                          domain=3, arrival=1, line=7)
            released, _ = drive(ctrl, [req])
            lat[turn] = released[0].latency
        assert lat[156] > lat[60]
