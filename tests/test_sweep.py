"""Tests for the parameter-sweep utilities."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.runner import SchemeOptions
from repro.sim.sweep import Sweep

CFG = SystemConfig(accesses_per_core=120)


@pytest.fixture
def sweep():
    return Sweep(CFG, max_cycles=3_000_000)


class TestRunPoint:
    def test_point_metrics(self, sweep):
        point = sweep.run_point("fs_rp", "xalancbmk")
        assert 0 < point.weighted_ipc <= 8.0
        assert 0 <= point.bus_utilization <= 1.0
        assert point.energy_pj > 0
        assert sweep.points == [point]

    def test_baseline_cached(self, sweep):
        sweep.run_point("fs_rp", "xalancbmk")
        sweep.run_point("tp_bp", "xalancbmk")
        assert len(sweep._baselines) == 1

    def test_options_forwarded(self, sweep):
        point = sweep.run_point(
            "tp_bp", "xalancbmk", label="turn100",
            options=SchemeOptions(turn_length=100),
        )
        assert point.label == "turn100"


class TestGrids:
    def test_turn_length_sweep_shape(self, sweep):
        grid = sweep.turn_length_sweep(
            ["xalancbmk"], [60, 100], bank_partitioned=True
        )
        assert set(grid) == {60, 100}
        assert all(len(points) == 1 for points in grid.values())

    def test_core_count_sweep_shape(self, sweep):
        grid = sweep.core_count_sweep(
            ["fs_rp"], ["xalancbmk"], [8, 4]
        )
        assert set(grid) == {("fs_rp", 8), ("fs_rp", 4)}
        assert grid[("fs_rp", 4)][0].cores == 4

    def test_mean(self, sweep):
        grid = sweep.turn_length_sweep(["xalancbmk"], [60])
        assert sweep.mean(grid[60]) == grid[60][0].weighted_ipc
        with pytest.raises(ValueError):
            sweep.mean([])
