"""Unit and property tests for address mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.commands import Address
from repro.mapping.address import FIELDS, AddressMapper, Geometry


class TestGeometry:
    def test_default_capacity(self):
        g = Geometry()
        assert g.lines_total == 1 * 8 * 8 * 65536 * 128
        assert g.lines_per_bank == 65536 * 128

    def test_rejects_zero_dimension(self):
        with pytest.raises(ValueError):
            Geometry(ranks=0)

    def test_size_lookup(self):
        g = Geometry(channels=2, ranks=4, banks=8, rows=16, columns=32)
        assert [g.size(f) for f in FIELDS] == [2, 4, 8, 16, 32]


class TestMapper:
    def test_consecutive_lines_same_row(self):
        m = AddressMapper(Geometry())
        a, b = m.decode(0), m.decode(1)
        assert a.row == b.row and a.bank == b.bank and a.rank == b.rank
        assert b.column == a.column + 1

    def test_row_boundary_switches_channel_then_rank(self):
        g = Geometry(channels=2)
        m = AddressMapper(g)
        a = m.decode(g.columns - 1)
        b = m.decode(g.columns)
        assert b.channel != a.channel or b.bank != a.bank \
            or b.rank != a.rank

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            AddressMapper(Geometry(), order=("row", "rank"))

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            AddressMapper(Geometry()).decode(-1)

    def test_encode_validates_ranges(self):
        m = AddressMapper(Geometry())
        with pytest.raises(ValueError):
            m.encode(Address(0, 99, 0, 0, 0))

    def test_wraps_modulo_capacity(self):
        g = Geometry(channels=1, ranks=2, banks=2, rows=4, columns=4)
        m = AddressMapper(g)
        assert m.decode(g.lines_total + 3) == m.decode(3)


SMALL = Geometry(channels=2, ranks=4, banks=4, rows=64, columns=16)


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=SMALL.lines_total - 1))
    @settings(max_examples=200)
    def test_decode_encode_roundtrip(self, line):
        m = AddressMapper(SMALL)
        assert m.encode(m.decode(line)) == line

    @given(
        st.integers(min_value=0, max_value=SMALL.lines_total - 1),
        st.permutations(list(FIELDS)),
    )
    @settings(max_examples=100)
    def test_roundtrip_any_field_order(self, line, order):
        m = AddressMapper(SMALL, order=order)
        assert m.encode(m.decode(line)) == line

    @given(st.integers(min_value=0, max_value=SMALL.lines_total - 1))
    @settings(max_examples=100)
    def test_decode_in_bounds(self, line):
        a = AddressMapper(SMALL).decode(line)
        assert 0 <= a.channel < SMALL.channels
        assert 0 <= a.rank < SMALL.ranks
        assert 0 <= a.bank < SMALL.banks
        assert 0 <= a.row < SMALL.rows
        assert 0 <= a.column < SMALL.columns

    def test_decode_is_bijection_on_small_geometry(self):
        g = Geometry(channels=1, ranks=2, banks=2, rows=4, columns=4)
        m = AddressMapper(g)
        seen = {m.encode(m.decode(i)) for i in range(g.lines_total)}
        assert len(seen) == g.lines_total
