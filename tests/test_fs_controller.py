"""Tests for the Fixed Service controller."""

import random

import pytest

from repro.core.energy_opts import FsEnergyOptions
from repro.core.fs_controller import FixedServiceController, PrefetchBuffer
from repro.core.pipeline_solver import SharingLevel
from repro.core.schedule import (
    build_fs_schedule,
    build_triple_alternation_schedule,
)
from repro.dram.checker import TimingChecker
from repro.dram.commands import OpType, Request, RequestKind
from repro.dram.system import DramSystem
from repro.dram.timing import DDR3_1600_X4
from repro.mapping.address import Geometry
from repro.mapping.partition import NoPartition, RankPartition

P = DDR3_1600_X4
G = Geometry()


def make_rp_controller(num_domains=8, **kwargs):
    dram = DramSystem(P, ranks_per_channel=max(num_domains, 8))
    geometry = Geometry(ranks=max(num_domains, 8))
    partition = RankPartition(geometry, num_domains)
    schedule = build_fs_schedule(P, num_domains, SharingLevel.RANK)
    ctrl = FixedServiceController(
        dram, schedule, partition, log_commands=True, **kwargs
    )
    return ctrl, partition


def drive(ctrl, requests, horizon=None):
    """Deliver requests on time and run the controller dry."""
    requests = sorted(requests, key=lambda r: r.arrival)
    released = []
    clock, idx = 0, 0
    while idx < len(requests) or ctrl.busy():
        nxt = ctrl.next_event()
        arr = requests[idx].arrival if idx < len(requests) else None
        cands = [c for c in (nxt, arr) if c is not None]
        if not cands:
            break
        clock = max(clock + 1, min(cands))
        while idx < len(requests) and requests[idx].arrival <= clock:
            ctrl.enqueue(requests[idx])
            idx += 1
        released += ctrl.advance(clock)
        if horizon and clock > horizon:
            break
    return released, clock


def random_requests(partition, n, num_domains=8, seed=0, read_frac=0.7,
                    spacing=10):
    rng = random.Random(seed)
    out, t = [], 0
    for _ in range(n):
        d = rng.randrange(num_domains)
        line = rng.randrange(100_000)
        op = OpType.READ if rng.random() < read_frac else OpType.WRITE
        out.append(Request(
            op=op, address=partition.decode(d, line), domain=d,
            arrival=t, line=line,
        ))
        t += rng.randrange(0, spacing)
    return out


class TestBasicService:
    def test_all_reads_released(self):
        ctrl, part = make_rp_controller()
        reqs = random_requests(part, 200)
        released, _ = drive(ctrl, reqs)
        expected = sum(1 for r in reqs if r.is_read)
        assert len(released) == expected

    def test_commands_pass_jedec_checker(self):
        ctrl, part = make_rp_controller()
        reqs = random_requests(part, 300, spacing=6)
        drive(ctrl, reqs)
        assert TimingChecker(P).check(ctrl.command_log) == []

    def test_service_cadence_is_slot_aligned(self):
        """A domain's data transfers happen only at its own slot phase."""
        ctrl, part = make_rp_controller()
        reqs = random_requests(part, 200)
        drive(ctrl, reqs)
        sched = ctrl.schedule
        for d in range(8):
            offsets = {
                (cycle - sched.lead) % sched.interval_length
                for cycle, kind in ctrl.service_trace[d]
                if kind != "-"
            }
            expected = {s.anchor_offset for s in sched.slots_of_domain(d)}
            assert offsets <= expected

    def test_dummies_fill_idle_slots(self):
        ctrl, part = make_rp_controller()
        # One domain busy, others idle -> their slots become dummies.
        reqs = [
            Request(op=OpType.READ, address=part.decode(0, i * 7),
                    domain=0, arrival=i * 56, line=i * 7)
            for i in range(50)
        ]
        drive(ctrl, reqs)
        assert ctrl.stats.dummies > 200

    def test_read_latency_bounded_by_interval_when_unloaded(self):
        ctrl, part = make_rp_controller()
        reqs = [
            Request(op=OpType.READ, address=part.decode(0, i * 131),
                    domain=0, arrival=i * 200, line=i * 131)
            for i in range(30)
        ]
        released, _ = drive(ctrl, reqs)
        for r in released:
            assert r.latency <= 2 * ctrl.schedule.interval_length

    def test_wrong_channel_rejected(self):
        ctrl, part = make_rp_controller()
        bad = Request(op=OpType.READ, address=part.decode(0, 1), domain=0)
        bad.address.channel = 3
        with pytest.raises(ValueError):
            ctrl.enqueue(bad)


class TestTripleAlternationController:
    def test_bank_mod_respected(self):
        dram = DramSystem(P)
        partition = NoPartition(G, 8)
        schedule = build_triple_alternation_schedule(P, 8)
        ctrl = FixedServiceController(
            dram, schedule, partition, log_commands=True
        )
        reqs = random_requests(partition, 300, spacing=8)
        drive(ctrl, reqs)
        assert TimingChecker(P).check(ctrl.command_log) == []
        # Reconstruct each command's slot and check the bank class.
        sched = schedule
        for cmd in ctrl.command_log:
            if cmd.type.is_column:
                continue
        # All demand requests eventually serviced.
        expected = sum(1 for r in reqs if r.is_read)
        assert ctrl.stats.demand_reads == expected


class TestSmallThreadCounts:
    """Section 7: at <= 6 threads the 43-cycle same-rank rule bites."""

    def test_two_domains_never_violate(self):
        ctrl, part = make_rp_controller(num_domains=2)
        reqs = random_requests(part, 300, num_domains=2, spacing=4)
        drive(ctrl, reqs)
        assert TimingChecker(P).check(ctrl.command_log) == []

    def test_two_domains_may_bubble_or_reorder(self):
        ctrl, part = make_rp_controller(num_domains=2)
        # Alternating read/write stream forces write->read hazards.
        reqs = []
        for i in range(100):
            op = OpType.READ if i % 2 == 0 else OpType.WRITE
            reqs.append(Request(
                op=op, address=part.decode(0, i * 31), domain=0,
                arrival=i * 3, line=i * 31,
            ))
        released, _ = drive(ctrl, reqs)
        assert len(released) == 50  # every read still completes

    def test_four_domains_never_violate(self):
        ctrl, part = make_rp_controller(num_domains=4)
        reqs = random_requests(part, 300, num_domains=4, spacing=4)
        drive(ctrl, reqs)
        assert TimingChecker(P).check(ctrl.command_log) == []


class TestEnergyOptions:
    def test_suppressed_dummies_issue_no_commands(self):
        ctrl, part = make_rp_controller(
            energy_options=FsEnergyOptions(suppress_dummies=True)
        )
        reqs = random_requests(part, 100)
        drive(ctrl, reqs)
        assert ctrl.stats.suppressed_dummies == ctrl.stats.dummies
        # No dummy commands on the bus: every logged command belongs to a
        # demand/prefetch request.
        assert TimingChecker(P).check(ctrl.command_log) == []

    def test_row_hit_boost_counts_savings(self):
        ctrl, part = make_rp_controller(
            energy_options=FsEnergyOptions(boost_row_hits=True)
        )
        # Same row accessed repeatedly by domain 0.
        reqs = [
            Request(op=OpType.READ, address=part.decode(0, i % 4),
                    domain=0, arrival=i * 56, line=i % 4)
            for i in range(40)
        ]
        drive(ctrl, reqs)
        assert ctrl.adjustments.rowhit_saved_activates > 10

    def test_power_down_idles_ranks_behaviourally(self):
        """Energy optimization 3 issues real PDN/PUP commands: idle
        domains' ranks accumulate power-down residency, and the stream
        stays JEDEC-legal."""
        ctrl, part = make_rp_controller(
            energy_options=FsEnergyOptions(
                suppress_dummies=True, power_down_idle=True
            )
        )
        reqs = [
            Request(op=OpType.READ, address=part.decode(0, i),
                    domain=0, arrival=i * 56, line=i)
            for i in range(30)
        ]
        _, clock = drive(ctrl, reqs)
        ctrl.dram.finalize(clock)
        pd_cycles = sum(
            rank.energy.cycles_power_down
            for ch in ctrl.dram.channels for rank in ch.ranks
        )
        assert pd_cycles > 0
        assert TimingChecker(P).check(ctrl.command_log) == []

    def test_power_down_wakes_up_for_demand(self):
        """A powered-down rank must be back up before its domain's next
        slot can carry a demand transaction."""
        ctrl, part = make_rp_controller(
            energy_options=FsEnergyOptions(power_down_idle=True)
        )
        # Sparse demand: every ~5 intervals, forcing PDN/PUP between.
        reqs = [
            Request(op=OpType.READ, address=part.decode(2, i * 7),
                    domain=2, arrival=i * 280, line=i * 7)
            for i in range(20)
        ]
        released, _ = drive(ctrl, reqs)
        assert len(released) == 20
        assert TimingChecker(P).check(ctrl.command_log) == []


class TestPrefetchBuffer:
    def test_fifo_eviction(self):
        buf = PrefetchBuffer(capacity=2)
        buf.fill(1)
        buf.fill(2)
        buf.fill(3)
        assert not buf.hit(1)
        assert buf.hit(2)

    def test_hit_consumes_line(self):
        buf = PrefetchBuffer()
        buf.fill(7)
        assert buf.hit(7)
        assert not buf.hit(7)

    def test_useful_fraction(self):
        buf = PrefetchBuffer()
        buf.fill(1)
        buf.fill(2)
        buf.hit(1)
        assert buf.useful_fraction == 0.5

    def test_none_never_hits(self):
        buf = PrefetchBuffer()
        assert not buf.hit(None)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(capacity=0)


class TestShapingInvariant:
    def test_slot_count_matches_elapsed_time(self):
        """Total serviced slots (incl. dummies/bubbles) per domain equals
        elapsed intervals — the 'constant injection rate' invariant."""
        ctrl, part = make_rp_controller()
        reqs = random_requests(part, 150)
        _, clock = drive(ctrl, reqs)
        intervals_done = (
            clock - ctrl.schedule.lead
        ) // ctrl.schedule.interval_length
        for d in range(8):
            slots = len(ctrl.service_trace[d])
            assert abs(slots - intervals_done) <= 2
