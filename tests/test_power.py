"""Unit tests for the IDD-based power model and energy adjustments."""

import pytest

from repro.core.energy_opts import (
    EnergyAdjustments,
    FsEnergyOptions,
    adjusted_energy,
)
from repro.dram.power import (
    DramPowerParams,
    EnergyBreakdown,
    MICRON_4GB_DDR3_1600,
    PowerModel,
    ZERO_ENERGY,
)
from repro.dram.rank import RankEnergyCounters
from repro.dram.timing import DDR3_1600_X4

P = DDR3_1600_X4


@pytest.fixture
def model():
    return PowerModel(P)


class TestComponentEnergies:
    def test_zero_activity_zero_dynamic(self, model):
        e = model.rank_energy(RankEnergyCounters())
        assert e.activate_pj == 0
        assert e.read_pj == 0 and e.write_pj == 0
        assert e.background_pj == 0

    def test_activate_energy_positive(self, model):
        e = model.rank_energy(RankEnergyCounters(activates=10))
        assert e.activate_pj > 0

    def test_activate_energy_linear(self, model):
        e1 = model.rank_energy(RankEnergyCounters(activates=1))
        e10 = model.rank_energy(RankEnergyCounters(activates=10))
        assert e10.activate_pj == pytest.approx(10 * e1.activate_pj)

    def test_write_burst_costs_more_than_read(self, model):
        # IDD4W > IDD4R for this part.
        er = model.rank_energy(RankEnergyCounters(reads=100))
        ew = model.rank_energy(RankEnergyCounters(writes=100))
        assert ew.write_pj > er.read_pj

    def test_background_states_ordered(self, model):
        active = model.rank_energy(
            RankEnergyCounters(cycles_active=1000)
        ).background_pj
        standby = model.rank_energy(
            RankEnergyCounters(cycles_precharged=1000)
        ).background_pj
        pdn = model.rank_energy(
            RankEnergyCounters(cycles_power_down=1000)
        ).background_pj
        assert active > standby > pdn > 0

    def test_refresh_energy(self, model):
        e = model.rank_energy(RankEnergyCounters(refreshes=3))
        assert e.refresh_pj > 0

    def test_io_energy_per_burst(self, model):
        e = model.rank_energy(RankEnergyCounters(reads=2, writes=3))
        assert e.io_pj == pytest.approx(
            5 * MICRON_4GB_DDR3_1600.io_energy_per_burst_pj
        )


class TestBreakdownArithmetic:
    def test_total(self):
        e = EnergyBreakdown(1, 2, 3, 4, 5, 6)
        assert e.total_pj == 21
        assert e.total_mj == pytest.approx(21e-9)

    def test_add(self):
        e = EnergyBreakdown(1, 1, 1, 1, 1, 1) + ZERO_ENERGY
        assert e.total_pj == 6


class TestValidation:
    def test_devices_per_rank(self):
        with pytest.raises(ValueError):
            DramPowerParams(devices_per_rank=0)

    def test_positive_currents(self):
        with pytest.raises(ValueError):
            DramPowerParams(idd0=-1)

    def test_cycle_ns(self):
        with pytest.raises(ValueError):
            PowerModel(P, cycle_ns=0)


class TestAdjustments:
    def test_rowhit_saving_reduces_activate_energy(self, model):
        measured = model.rank_energy(RankEnergyCounters(activates=100))
        adj = EnergyAdjustments(rowhit_saved_activates=40)
        adjusted = adjusted_energy(measured, adj, model)
        assert adjusted.activate_pj == pytest.approx(
            0.6 * measured.activate_pj
        )

    def test_powerdown_saving_reduces_background(self, model):
        measured = model.rank_energy(
            RankEnergyCounters(cycles_precharged=10_000)
        )
        adj = EnergyAdjustments(powerdown_cycles=10_000)
        adjusted = adjusted_energy(measured, adj, model)
        pdn_equiv = model.rank_energy(
            RankEnergyCounters(cycles_power_down=10_000)
        ).background_pj
        assert adjusted.background_pj == pytest.approx(pdn_equiv)

    def test_savings_never_go_negative(self, model):
        measured = model.rank_energy(RankEnergyCounters(activates=1))
        adj = EnergyAdjustments(rowhit_saved_activates=1000)
        adjusted = adjusted_energy(measured, adj, model)
        assert adjusted.activate_pj == 0.0

    def test_merge(self):
        a = EnergyAdjustments(1, 2)
        a.merge(EnergyAdjustments(10, 20))
        assert (a.rowhit_saved_activates, a.powerdown_cycles) == (11, 22)


class TestFsEnergyOptions:
    def test_none_and_all(self):
        assert not FsEnergyOptions.none().suppress_dummies
        all_on = FsEnergyOptions.all()
        assert all_on.suppress_dummies and all_on.boost_row_hits \
            and all_on.power_down_idle
