"""Multiprocess sweep execution: determinism and crash isolation.

The contract under test (the tentpole's payoff):

* ``workers=N`` produces a **byte-identical** checkpoint and identical
  (non-volatile) merged metrics snapshots to ``workers=1``, on both
  simulation engines;
* a worker that dies *hard* (``os._exit`` — no exception, pool broken)
  is isolated into ``failed_points`` while completed cells stay
  checkpointed, and a fresh sweep resumes from that checkpoint to the
  same final table a serial run produces;
* user-registered schemes ship to workers via their picklable spec.
"""

import json
import os

import pytest

from repro.errors import ConfigError, ReproError
from repro.schemes import REGISTRY, SchemeSpec
from repro.sim.config import SystemConfig
from repro.sim.runner import SchemeOptions
from repro.sim.sweep import Sweep

from .crashing_scheme import CRASH_ENV

CFG = SystemConfig(num_cores=4, accesses_per_core=60).with_cores(4)

GRID_SCHEMES = ["fs_rp", "tp_bp", "fcfs"]
GRID_WORKLOADS = ["mcf", "milc"]

CRASH_SPEC = SchemeSpec(
    name="crash_fcfs",
    description="hard-kills its worker process when armed",
    family="fcfs",
    partitioning="none",
    controller="tests.crashing_scheme.CrashingFcfsController",
    secure=False,
)


def _run(tmp_path, name, workers, engine="fast", schemes=GRID_SCHEMES,
         workloads=GRID_WORKLOADS, **kwargs):
    checkpoint = str(tmp_path / f"{name}.json")
    sweep = Sweep(
        CFG, max_cycles=2_000_000, checkpoint=checkpoint,
        workers=workers, engine=engine, **kwargs,
    )
    sweep.run_grid(schemes, workloads)
    return sweep, checkpoint


class TestWorkerDeterminism:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_parallel_checkpoint_is_byte_identical(
        self, tmp_path, engine
    ):
        serial, ck1 = _run(tmp_path, "serial", 1, engine=engine)
        parallel, ck4 = _run(tmp_path, "par", 4, engine=engine)
        with open(ck1, "rb") as a, open(ck4, "rb") as b:
            assert a.read() == b.read()
        assert serial.points == parallel.points
        assert not serial.failed_points
        assert not parallel.failed_points

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_merged_metrics_snapshots_identical(self, tmp_path, engine):
        serial, _ = _run(
            tmp_path, "serial_m", 1, engine=engine,
            collect_telemetry=True,
        )
        parallel, _ = _run(
            tmp_path, "par_m", 4, engine=engine,
            collect_telemetry=True,
        )
        snap_serial = serial.metrics_registry().snapshot()
        snap_parallel = parallel.metrics_registry().snapshot()
        assert snap_serial == snap_parallel
        # The per-cell registries actually collected something.
        assert serial.cell_registry.snapshot()
        assert serial.cell_registry.snapshot() == \
            parallel.cell_registry.snapshot()

    def test_wall_clock_recorded_as_volatile_gauge(self, tmp_path):
        sweep, _ = _run(tmp_path, "wall", 2)
        assert sweep.last_grid_wall_s is not None
        assert sweep.last_grid_wall_s > 0
        registry = sweep.metrics_registry()
        exported = json.loads(registry.to_json())
        assert "sweep_wall_seconds" in exported["metrics"]
        assert "sweep_workers" in exported["metrics"]
        # Volatile: excluded from the determinism snapshot.
        snap = registry.snapshot()
        assert "sweep_wall_seconds" not in snap
        assert "sweep_workers" not in snap

    def test_span_trace_byte_identical_across_worker_counts(
        self, tmp_path
    ):
        """``--workers 4`` with spans armed merges into the same
        Chrome trace a serial grid writes, modulo ``wall_*`` args —
        and arming spans leaves the checkpoint bytes untouched."""
        import io

        from repro.telemetry import scrub_volatile_args

        traces = {}
        checkpoints = {}
        for workers in (1, 4):
            sweep, ck = _run(
                tmp_path, f"spans{workers}", workers,
                collect_spans=True,
            )
            buf = io.StringIO()
            exported = sweep.export_trace(buf)
            assert exported == len(sweep.tracer.records)
            assert exported > 0
            payload = scrub_volatile_args(json.loads(buf.getvalue()))
            traces[workers] = json.dumps(payload, sort_keys=True)
            with open(ck, "rb") as handle:
                checkpoints[workers] = handle.read()
        assert traces[1] == traces[4], \
            "merged span trace diverged across worker counts"
        assert checkpoints[1] == checkpoints[4]
        # Spans never leak into the checkpoint: a disarmed run's
        # checkpoint is byte-identical.
        _, ck_bare = _run(tmp_path, "nospans", 4)
        with open(ck_bare, "rb") as handle:
            assert handle.read() == checkpoints[4]

    def test_span_collection_does_not_change_metrics(self, tmp_path):
        """Spans and telemetry compose: the merged metrics snapshot is
        unchanged by arming span collection."""
        bare, _ = _run(
            tmp_path, "m_bare", 4, collect_telemetry=True,
        )
        spanned, _ = _run(
            tmp_path, "m_spans", 4, collect_telemetry=True,
            collect_spans=True,
        )
        assert bare.metrics_registry().snapshot() == \
            spanned.metrics_registry().snapshot()
        assert spanned.tracer.records

    def test_export_trace_requires_collection(self, tmp_path):
        from repro.errors import TelemetryError

        sweep, _ = _run(tmp_path, "notrace", 1)
        with pytest.raises(TelemetryError, match="collect_spans"):
            sweep.export_trace(str(tmp_path / "t.json"))

    def test_options_ride_into_workers(self, tmp_path):
        serial, _ = _run(
            tmp_path, "opt_s", 1, schemes=["tp_bp"],
        )
        # Same scheme with a different turn length must differ, proving
        # the options block reached the worker.
        sweep = Sweep(CFG, max_cycles=2_000_000, workers=2)
        sweep.run_grid(
            ["tp_bp"], GRID_WORKLOADS,
            options=SchemeOptions(turn_length=200),
        )
        assert sweep.points[0].cycles != serial.points[0].cycles

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigError, match="workers"):
            Sweep(CFG, workers=0)

    def test_session_options_rejected_in_parallel(self):
        from repro.telemetry import TelemetrySession

        sweep = Sweep(CFG, workers=2)
        with pytest.raises(ConfigError, match="telemetry"):
            sweep.run_grid(
                ["fcfs"], ["mcf"],
                options=SchemeOptions(telemetry=TelemetrySession()),
            )


class TestCustomSchemeTransport:
    @pytest.fixture(autouse=True)
    def _crash_spec_unarmed(self):
        REGISTRY.register(CRASH_SPEC)
        yield
        REGISTRY.unregister("crash_fcfs")

    def test_user_spec_ships_to_workers(self, tmp_path):
        # Unarmed, the crash controller is plain FCFS registered only in
        # this (parent) process; workers must learn it from the payload.
        assert os.environ.get(CRASH_ENV) != "1"
        sweep, _ = _run(
            tmp_path, "custom", 2, schemes=["crash_fcfs", "fcfs"],
            workloads=["mcf"],
        )
        assert not sweep.failed_points
        by_scheme = {p.scheme: p for p in sweep.points}
        assert by_scheme["crash_fcfs"].cycles == \
            by_scheme["fcfs"].cycles  # same controller behaviour

    def test_unknown_scheme_isolated_not_fatal(self, tmp_path):
        sweep, _ = _run(
            tmp_path, "unknown", 2,
            schemes=["fcfs", "no_such_scheme"], workloads=["mcf"],
        )
        assert [p.scheme for p in sweep.points] == ["fcfs"]
        assert [f.scheme for f in sweep.failed_points] == \
            ["no_such_scheme"]
        assert sweep.failed_points[0].error_type == "SchemeError"

    def test_strict_mode_reraises_worker_failure(self):
        sweep = Sweep(CFG, workers=2, strict=True)
        with pytest.raises(ReproError):
            sweep.run_grid(["no_such_scheme"], ["mcf"])


class TestCrashIsolationAndResume:
    @pytest.fixture(autouse=True)
    def _crash_spec(self):
        REGISTRY.register(CRASH_SPEC)
        yield
        REGISTRY.unregister("crash_fcfs")

    def test_hard_worker_crash_isolated_then_resumed(
        self, tmp_path, monkeypatch
    ):
        schemes = ["fcfs", "crash_fcfs", "fs_rp"]
        workloads = ["mcf"]
        checkpoint = str(tmp_path / "crash.json")

        # Round 1: armed.  The crash worker dies via os._exit and
        # breaks the pool; the grid must record failures instead of
        # raising, and keep whatever completed in the checkpoint.
        monkeypatch.setenv(CRASH_ENV, "1")
        first = Sweep(
            CFG, max_cycles=2_000_000, checkpoint=checkpoint,
            workers=2, engine="fast",
        )
        first.run_grid(schemes, workloads)  # must not raise
        failed = {f.scheme for f in first.failed_points}
        assert "crash_fcfs" in failed
        assert len(first.points) + len(first.failed_points) == 3
        assert os.path.exists(checkpoint)

        # Round 2: disarmed.  A fresh sweep resumes from the checkpoint
        # and completes every cell (including the former crasher, which
        # now behaves as plain FCFS).
        monkeypatch.delenv(CRASH_ENV)
        second = Sweep(
            CFG, max_cycles=2_000_000, checkpoint=checkpoint,
            workers=2, engine="fast",
        )
        already_done = {p.scheme for p in second.points}
        carried_failures = len(second.failed_points)  # checkpointed
        second.run_grid(schemes, workloads)
        # No NEW failures (the round-1 records stay in the checkpoint
        # as history); every cell — including the former crasher, now
        # plain FCFS — completed.
        assert len(second.failed_points) == carried_failures
        assert {p.scheme for p in second.points} == set(schemes)

        # Resumed cells were NOT re-simulated: the checkpointed rows
        # survive verbatim, and every final value matches a from-scratch
        # serial reference run.
        reference = Sweep(
            CFG, max_cycles=2_000_000, workers=1, engine="fast",
        )
        reference.run_grid(schemes, workloads)
        ref = {p.scheme: p for p in reference.points}
        got = {p.scheme: p for p in second.points}
        assert set(got) == set(ref)
        for name in ref:
            assert got[name] == ref[name], name
        assert already_done <= {p.scheme for p in second.points}
