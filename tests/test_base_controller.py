"""Tests for the shared controller framework (ControllerStats, base)."""

import pytest

from repro.controllers.base import ControllerStats, MemoryController
from repro.controllers.fcfs import FcfsController
from repro.dram.commands import Address, OpType, Request, RequestKind
from repro.dram.system import DramSystem
from repro.dram.timing import DDR3_1600_X4


def req(op=OpType.READ, kind=RequestKind.DEMAND, arrival=0):
    return Request(op=op, address=Address(0, 0, 0, 0, 0), kind=kind,
                   arrival=arrival)


class TestControllerStats:
    def test_service_classification(self):
        stats = ControllerStats()
        stats.record_service(req())
        stats.record_service(req(op=OpType.WRITE))
        stats.record_service(req(kind=RequestKind.DUMMY))
        stats.record_service(req(kind=RequestKind.PREFETCH))
        assert stats.demand_reads == 1
        assert stats.demand_writes == 1
        assert stats.dummies == 1
        assert stats.prefetches == 1
        assert stats.serviced == 4

    def test_fractions(self):
        stats = ControllerStats()
        assert stats.dummy_fraction == 0.0
        assert stats.prefetch_fraction == 0.0
        stats.record_service(req())
        stats.record_service(req(kind=RequestKind.DUMMY))
        assert stats.dummy_fraction == 0.5

    def test_latency_only_counts_demand_reads(self):
        stats = ControllerStats()
        r = req(arrival=10)
        r.release = 110
        stats.record_release(r)
        w = req(op=OpType.WRITE, arrival=0)
        w.release = 50
        stats.record_release(w)
        dummy = req(kind=RequestKind.DUMMY, arrival=0)
        dummy.release = 30
        stats.record_release(dummy)
        assert stats.read_count == 1
        assert stats.mean_read_latency == 100.0


class TestBaseBehaviour:
    def test_time_cannot_go_backwards(self):
        ctrl = FcfsController(DramSystem(DDR3_1600_X4), 1)
        ctrl.advance(100)
        with pytest.raises(ValueError):
            ctrl.advance(50)

    def test_needs_a_domain(self):
        with pytest.raises(ValueError):
            FcfsController(DramSystem(DDR3_1600_X4), 0)

    def test_drain_deadline(self):
        ctrl = FcfsController(DramSystem(DDR3_1600_X4), 1)
        assert ctrl.drain_deadline() is None
        request = req()
        ctrl.enqueue(request)
        ctrl.advance(1)  # issues ACT+COL, schedules the release
        assert ctrl.drain_deadline() is not None

    def test_releases_drain_in_time_order(self):
        ctrl = FcfsController(DramSystem(DDR3_1600_X4), 1)
        a = Request(op=OpType.READ, address=Address(0, 0, 0, 1, 0),
                    arrival=0, line=1)
        b = Request(op=OpType.READ, address=Address(0, 0, 1, 1, 0),
                    arrival=0, line=2)
        ctrl.enqueue(a)
        ctrl.enqueue(b)
        released = ctrl.advance(2000)
        assert [r.line for r in released] == [1, 2]
        assert released[0].release <= released[1].release

    def test_service_trace_recorded_per_domain(self):
        ctrl = FcfsController(DramSystem(DDR3_1600_X4), 2)
        ctrl.enqueue(Request(op=OpType.READ,
                             address=Address(0, 0, 0, 0, 0),
                             domain=1, arrival=0))
        ctrl.advance(2000)
        assert ctrl.service_trace[1]
        assert not ctrl.service_trace[0]

    def test_name(self):
        ctrl = FcfsController(DramSystem(DDR3_1600_X4), 1)
        assert ctrl.name == "FcfsController"
