"""Tests for the runtime FS security invariants."""

import pytest

from repro.core.invariants import (
    assert_non_interference,
    check_constant_service,
    check_schedule_conformance,
)
from repro.core.pipeline_solver import SharingLevel
from repro.core.schedule import build_fs_schedule
from repro.dram.timing import DDR3_1600_X4
from repro.sim.config import SystemConfig
from repro.sim.runner import build_system
from repro.workloads.spec import suite_specs, workload

P = DDR3_1600_X4
CFG = SystemConfig(accesses_per_core=250)


def run_fs(workload_name="milc"):
    system = build_system("fs_rp", CFG, suite_specs(workload_name, 8))
    system.run(max_cycles=3_000_000)
    return system.controller


class TestScheduleConformance:
    def test_real_run_conforms(self):
        ctrl = run_fs()
        violations = check_schedule_conformance(
            ctrl.schedule, ctrl.service_trace
        )
        assert violations == []

    def test_detects_foreign_offset(self):
        schedule = build_fs_schedule(P, 8, SharingLevel.RANK)
        trace = {d: [] for d in range(8)}
        # Domain 3 "served" at domain 0's slot offset.
        trace[3] = [(schedule.lead + 0, "R")]
        violations = check_schedule_conformance(schedule, trace)
        assert violations and "foreign offset" in violations[0].reason

    def test_detects_double_service(self):
        schedule = build_fs_schedule(P, 8, SharingLevel.RANK)
        anchor = schedule.lead + schedule.slots[2].anchor_offset
        trace = {d: [] for d in range(8)}
        trace[2] = [(anchor, "R"), (anchor, "R")]
        violations = check_schedule_conformance(schedule, trace)
        assert any("more than once" in v.reason for v in violations)


class TestConstantService:
    def test_real_run_is_constant_rate(self):
        ctrl = run_fs()
        violations = check_constant_service(
            ctrl.schedule, ctrl.service_trace
        )
        assert violations == []

    def test_detects_starved_domain(self):
        schedule = build_fs_schedule(P, 8, SharingLevel.RANK)
        q = schedule.interval_length
        trace = {d: [] for d in range(8)}
        for d in range(8):
            count = 100 if d != 5 else 3   # domain 5 starved
            offset = schedule.slots_of_domain(d)[0].anchor_offset
            trace[d] = [
                (schedule.lead + i * q + offset, "R")
                for i in range(count)
            ]
        violations = check_constant_service(schedule, trace)
        assert any(v.domain == 5 for v in violations)

    def test_empty_trace_ok(self):
        schedule = build_fs_schedule(P, 4, SharingLevel.RANK)
        assert check_constant_service(
            schedule, {d: [] for d in range(4)}
        ) == []


class TestAssertNonInterference:
    def test_passes_for_fs(self):
        assert_non_interference(
            "fs_rp", workload("xalancbmk"),
            config=SystemConfig(accesses_per_core=120),
        )

    def test_raises_for_baseline(self):
        with pytest.raises(AssertionError, match="leaks"):
            assert_non_interference(
                "baseline", workload("mcf"),
                config=SystemConfig(accesses_per_core=200),
            )
