"""Unit tests for command and request types."""

import pytest

from repro.dram.commands import (
    Address,
    Command,
    CommandType,
    OpType,
    Request,
    RequestKind,
)


class TestCommandType:
    def test_column_classification(self):
        assert CommandType.COL_READ.is_column
        assert CommandType.COL_WRITE_AP.is_column
        assert not CommandType.ACTIVATE.is_column
        assert not CommandType.PRECHARGE.is_column

    def test_read_write_classification(self):
        assert CommandType.COL_READ.is_read
        assert CommandType.COL_READ_AP.is_read
        assert not CommandType.COL_WRITE.is_read
        assert CommandType.COL_WRITE.is_write
        assert CommandType.COL_WRITE_AP.is_write
        assert not CommandType.ACTIVATE.is_read

    def test_auto_precharge_flag(self):
        assert CommandType.COL_READ_AP.auto_precharge
        assert CommandType.COL_WRITE_AP.auto_precharge
        assert not CommandType.COL_READ.auto_precharge


class TestAddress:
    def test_same_bank(self):
        a = Address(0, 1, 2, 3, 4)
        b = Address(0, 1, 2, 9, 9)
        c = Address(0, 1, 3, 3, 4)
        assert a.same_bank(b)
        assert not a.same_bank(c)

    def test_same_rank(self):
        a = Address(0, 1, 2, 3, 4)
        assert a.same_rank(Address(0, 1, 7, 0, 0))
        assert not a.same_rank(Address(0, 2, 2, 3, 4))
        assert not a.same_rank(Address(1, 1, 2, 3, 4))

    def test_bank_key(self):
        assert Address(1, 2, 3, 4, 5).bank_key() == (1, 2, 3)


class TestRequest:
    def test_unique_ids(self):
        a = Request(OpType.READ, Address(0, 0, 0, 0, 0))
        b = Request(OpType.READ, Address(0, 0, 0, 0, 0))
        assert a.req_id != b.req_id

    def test_is_read(self):
        assert Request(OpType.READ, Address(0, 0, 0, 0, 0)).is_read
        assert not Request(OpType.WRITE, Address(0, 0, 0, 0, 0)).is_read

    def test_latency_requires_release(self):
        r = Request(OpType.READ, Address(0, 0, 0, 0, 0), arrival=10)
        assert r.latency is None
        r.release = 110
        assert r.latency == 100

    def test_default_kind_is_demand(self):
        r = Request(OpType.READ, Address(0, 0, 0, 0, 0))
        assert r.kind is RequestKind.DEMAND


class TestCommand:
    def test_rejects_negative_cycle(self):
        with pytest.raises(ValueError):
            Command(CommandType.ACTIVATE, -1, 0, 0)

    def test_frozen(self):
        cmd = Command(CommandType.ACTIVATE, 5, 0, 0)
        with pytest.raises(Exception):
            cmd.cycle = 6  # type: ignore[misc]


class TestOpType:
    def test_read_flag(self):
        assert OpType.READ.is_read
        assert not OpType.WRITE.is_read
