"""The execution substrate (:mod:`repro.exec`) and its consumers.

Four groups of properties:

* **unit contracts** — worker-count validation, the checkpoint store's
  atomic/versioned/keyed/corrupt-vs-incompatible rules, and the job
  shim's uniform failure capture;
* **runner determinism** — submission-order merging (serial vs
  parallel byte-identity), per-job failure isolation including hard
  worker death, pre-resolved failures, lazy-serial/eager-parallel
  auxiliaries, wall-clock budgets;
* **kill/resume** — a batch killed mid-run (its checkpoint holds a
  prefix of the merges) resumes to byte-identical final checkpoints and
  artifacts, parameterized over all three consumers (sweep, certify,
  bench) and both engines.  The merged span *trace* of a resumed run is
  deliberately not byte-compared: skipped (already-checkpointed) cells
  produce no spans, so only uninterrupted runs' traces are comparable —
  that property is pinned by the per-consumer parallel tests instead;
* **layering** — AST-level import lint: ``repro.exec`` imports nothing
  from ``repro.sim`` / ``repro.certify`` / ``repro.bench``, and
  ``repro.certify`` no longer reaches into ``repro.sim.sweep``
  (mirrors the CI grep gate).
"""

import ast
import dataclasses
import io
import json
import os

import pytest

from repro.errors import ConfigError, ExecError, ReproError
from repro.exec import (
    SPANS_KEY,
    CheckpointStore,
    JobSpec,
    failure_result,
    result_from_wire,
    run_job,
    run_jobs,
    validate_workers,
)

from .crashing_scheme import CRASH_ENV, crashing_job

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src", "repro",
)


# ----------------------------------------------------------------------
# Module-level job functions (spawn-picklable).
# ----------------------------------------------------------------------

def _double(payload):
    return {"doubled": payload["x"] * 2}


def _boom(payload):
    raise ValueError(f"boom {payload['x']}")


def _with_spans(payload):
    return {"v": payload["x"], SPANS_KEY: [("span", payload["x"])]}


#: Serial-mode auxiliary execution counter (in-process only).
_AUX_CALLS = {"n": 0}


def _counting_aux(payload):
    _AUX_CALLS["n"] += 1
    return {"aux": payload["x"]}


def _jobs(n, fn=_double):
    return [
        JobSpec(key=i, fn=fn, payload={"x": i}) for i in range(n)
    ]


# ----------------------------------------------------------------------
# Unit contracts.
# ----------------------------------------------------------------------

class TestValidateWorkers:
    @pytest.mark.parametrize("workers", [1, 2, 16])
    def test_valid(self, workers):
        assert validate_workers(workers) == workers

    @pytest.mark.parametrize(
        "workers", [0, -1, True, False, 1.5, "2", None]
    )
    def test_invalid(self, workers):
        with pytest.raises(ConfigError, match="workers"):
            validate_workers(workers)


class TestCheckpointStore:
    def test_roundtrip_with_envelope(self, tmp_path):
        path = str(tmp_path / "ck.json")
        store = CheckpointStore(path, 3)
        store.save({"rows": [1, 2]})
        assert store.load() == {"version": 3, "rows": [1, 2]}
        with open(path) as handle:
            raw = json.load(handle)
        assert list(raw)[0] == "version"  # envelope key first

    def test_no_path_disables_persistence(self, tmp_path):
        store = CheckpointStore(None, 1)
        store.save({"rows": []})  # no-op, no crash
        assert store.load() is None

    def test_missing_file_is_fresh(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "absent.json"), 1)
        assert store.load() is None

    def test_fresh_flag_discards_existing(self, tmp_path):
        path = str(tmp_path / "ck.json")
        CheckpointStore(path, 1).save({"rows": [1]})
        assert CheckpointStore(path, 1, fresh=True).load() is None

    def test_version_mismatch_starts_fresh(self, tmp_path):
        path = str(tmp_path / "ck.json")
        CheckpointStore(path, 1).save({"rows": [1]})
        assert CheckpointStore(path, 2).load() is None

    def test_batch_key_mismatch_starts_fresh(self, tmp_path):
        path = str(tmp_path / "ck.json")
        CheckpointStore(path, 1, batch_key="a").save({"rows": [1]})
        assert CheckpointStore(path, 1, batch_key="b").load() is None
        got = CheckpointStore(path, 1, batch_key="a").load()
        assert got["rows"] == [1]

    def test_non_dict_payload_starts_fresh(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with open(path, "w") as handle:
            json.dump([1, 2, 3], handle)
        assert CheckpointStore(path, 1).load() is None

    def test_corrupt_file_raises_naming_path(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with open(path, "w") as handle:
            handle.write('{"version": 1, "rows": [tru')  # truncated
        store = CheckpointStore(path, 1)
        with pytest.raises(ExecError) as err:
            store.load()
        message = str(err.value)
        assert path in message
        assert "--fresh" in message
        # ExecError is a ReproError: the CLI reports it and exits 2.
        assert isinstance(err.value, ReproError)
        # The escape hatch works on the very same file.
        assert CheckpointStore(path, 1, fresh=True).load() is None

    def test_save_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "ck.json")
        store = CheckpointStore(path, 1, tmp_prefix=".t-ckpt-")
        store.save({"rows": [1]})
        store.save({"rows": [1, 2]})
        assert sorted(os.listdir(tmp_path)) == ["ck.json"]
        assert store.load()["rows"] == [1, 2]


class TestJobShim:
    def test_success_wraps_value(self):
        spec = JobSpec(key="k", fn=_double, payload={"x": 4})
        assert run_job(spec) == {"ok": True, "value": {"doubled": 8}}

    def test_failure_captured_identically(self):
        spec = JobSpec(key="k", fn=_boom, payload={"x": 1})
        local = run_job(spec, _local=True)
        wire = run_job(spec)
        assert local["ok"] is False
        assert local["error_type"] == wire["error_type"] == "ValueError"
        assert local["error"] == wire["error"] == "boom 1"
        assert isinstance(local["exception"], ValueError)

    def test_result_from_wire_pops_span_side_channel(self):
        raw = run_job(
            JobSpec(key="k", fn=_with_spans, payload={"x": 9})
        )
        result = result_from_wire("k", raw)
        assert result.ok
        assert result.value == {"v": 9}  # SPANS_KEY popped
        assert result.spans == [("span", 9)]

    def test_failure_result_builder(self):
        result = failure_result("k", "RuntimeError", "died")
        assert not result.ok
        assert (result.error_type, result.error) == \
            ("RuntimeError", "died")


# ----------------------------------------------------------------------
# Runner determinism.
# ----------------------------------------------------------------------

def _collect(jobs, workers, **kwargs):
    """Run ``jobs`` and return the merge log in merge order."""
    merged = []
    run_jobs(
        jobs,
        lambda spec, result, _aux: merged.append(
            (spec.key, result.ok, result.value, result.error_type)
        ),
        workers=workers, **kwargs,
    )
    return merged


class TestRunJobs:
    def test_serial_and_parallel_merge_identically(self):
        jobs = _jobs(6)
        serial = _collect(jobs, 1)
        parallel = _collect(jobs, 3)
        assert serial == parallel
        assert [key for key, *_ in serial] == list(range(6))

    def test_failing_job_isolated_at_its_position(self):
        jobs = [
            JobSpec(key=0, fn=_double, payload={"x": 0}),
            JobSpec(key=1, fn=_boom, payload={"x": 1}),
            JobSpec(key=2, fn=_double, payload={"x": 2}),
        ]
        for workers in (1, 2):
            merged = _collect(jobs, workers)
            assert [key for key, *_ in merged] == [0, 1, 2]
            assert merged[1][1] is False
            assert merged[1][3] == "ValueError"
            assert merged[2][2] == {"doubled": 4}

    def test_preresolved_failure_never_executes(self):
        exc = KeyError("no such scheme")
        jobs = [JobSpec(key="bad", failure=exc)]
        for workers in (1, 2):
            merged = []
            run_jobs(
                jobs,
                lambda spec, result, _aux: merged.append(result),
                workers=workers,
            )
            (result,) = merged
            assert not result.ok
            assert result.error_type == "KeyError"
            assert result.error == str(exc)

    def test_skip_filters_before_execution(self):
        merged = _collect(_jobs(4), 1, skip=lambda job: job.key < 2)
        assert [key for key, *_ in merged] == [2, 3]

    def test_budget_diverts_to_skip_callback(self):
        skipped = []
        merged = _collect(
            _jobs(3), 1, budget_s=-1.0,
            on_budget_skip=lambda job: skipped.append(job.key),
        )
        assert merged == []
        assert skipped == [0, 1, 2]

    def test_serial_aux_is_lazy_and_memoized(self):
        _AUX_CALLS["n"] = 0
        aux = {"base": JobSpec(
            key="base", fn=_counting_aux, payload={"x": 7}
        )}
        jobs = [
            JobSpec(key=i, fn=_double, payload={"x": i},
                    requires=("base",))
            for i in range(3)
        ]
        seen = []
        run_jobs(
            jobs,
            lambda spec, result, resolve: seen.append(
                resolve("base").value
            ),
            aux=aux, workers=1,
        )
        assert seen == [{"aux": 7}] * 3
        assert _AUX_CALLS["n"] == 1  # memoized: one execution

    def test_serial_aux_never_runs_unasked(self):
        _AUX_CALLS["n"] = 0
        aux = {"base": JobSpec(
            key="base", fn=_counting_aux, payload={"x": 7}
        )}
        run_jobs(
            _jobs(2),
            lambda spec, result, resolve: None,
            aux=aux, workers=1,
        )
        assert _AUX_CALLS["n"] == 0  # lazy: nobody asked

    def test_parallel_aux_resolves_same_value(self):
        aux = {"base": JobSpec(
            key="base", fn=_double, payload={"x": 50}
        )}
        jobs = [JobSpec(key=0, fn=_double, payload={"x": 1},
                        requires=("base",))]
        seen = []
        run_jobs(
            jobs,
            lambda spec, result, resolve: seen.append(
                resolve("base").value
            ),
            aux=aux, workers=2,
        )
        assert seen == [{"doubled": 100}]

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            run_jobs([], lambda *a: None, workers=0)


class TestHardCrashIsolation:
    def test_hard_death_merged_as_failure_then_resumed(
        self, tmp_path, monkeypatch
    ):
        """The generic kill/resume property, straight on the substrate:
        a worker dying via ``os._exit`` is merged as a failure at its
        position (no raise, pool breakage isolated per job), completed
        jobs stay checkpointed, and the disarmed resume finishes the
        batch to the same values an uninterrupted serial run yields."""
        jobs = [
            JobSpec(key=i, fn=crashing_job, payload={"x": i})
            for i in range(3)
        ]
        store = CheckpointStore(str(tmp_path / "ck.json"), 1)
        completed = {}

        def merge(spec, result, _aux):
            if result.ok:
                completed[str(spec.key)] = result.value
                store.save({"done": completed})

        monkeypatch.setenv(CRASH_ENV, "1")
        outcomes = []
        run_jobs(
            jobs,
            lambda spec, result, _aux: (
                outcomes.append((spec.key, result.ok)),
                merge(spec, result, _aux),
            ),
            workers=2,
        )
        assert [key for key, _ in outcomes] == [0, 1, 2]
        assert not all(ok for _, ok in outcomes)  # the crash surfaced

        monkeypatch.delenv(CRASH_ENV)
        # Resume from whatever survived (every job may have failed if
        # the crash broke the pool before any completion landed).
        completed = dict((store.load() or {}).get("done", {}))
        run_jobs(
            jobs, merge, workers=2,
            skip=lambda job: str(job.key) in completed,
        )
        assert completed == {
            str(i): {"value": i * 10} for i in range(3)
        }


# ----------------------------------------------------------------------
# Kill/resume byte-identity across every consumer.
# ----------------------------------------------------------------------

class TestKillResumeByteIdentity:
    """A batch killed mid-run leaves a checkpoint holding a prefix of
    the merges (merging checkpoints after every job, so that is exactly
    the on-disk state a ``SIGKILL`` produces).  Resuming the full batch
    from that prefix must converge to byte-identical final checkpoints
    and artifacts."""

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_sweep_resume_checkpoint_bytes(self, tmp_path, engine):
        from repro.sim.config import SystemConfig
        from repro.sim.sweep import Sweep

        config = SystemConfig(
            num_cores=2, accesses_per_core=40
        ).with_cores(2)
        schemes = ["fs_rp", "fcfs"]

        def sweep(name):
            path = str(tmp_path / f"{name}.json")
            return Sweep(
                config, max_cycles=2_000_000, checkpoint=path,
                engine=engine,
            ), path

        full, ck_full = sweep(f"full_{engine}")
        full.run_grid(schemes, ["mcf"])
        assert not full.failed_points

        interrupted, ck_res = sweep(f"part_{engine}")
        interrupted.run_grid(schemes[:1], ["mcf"])  # "killed" after 1
        resumed, _ = Sweep(
            config, max_cycles=2_000_000, checkpoint=ck_res,
            engine=engine,
        ), ck_res
        resumed.run_grid(schemes, ["mcf"])

        with open(ck_full, "rb") as a, open(ck_res, "rb") as b:
            assert a.read() == b.read()
        assert resumed.points == full.points

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_certify_resume_checkpoint_and_artifact_bytes(
        self, tmp_path, engine
    ):
        from repro.certify import CertificationRun, generate_strategies
        from repro.certify.harness import write_certificate_jsonl
        from repro.sim.config import SystemConfig

        config = SystemConfig(num_cores=4, accesses_per_core=60)
        strategies = [
            dataclasses.replace(s, trials=1)
            for s in generate_strategies(2, seed=5)
        ]

        def certify(name, ck=None):
            path = ck or str(tmp_path / f"{name}.json")
            return CertificationRun(
                config=config, engine=engine, max_cycles=2_000_000,
                bootstrap_resamples=30, checkpoint=path,
            ), path

        full_run, ck_full = certify(f"cert_full_{engine}")
        cert_full = full_run.run("fs_rp", strategies)

        part_run, ck_res = certify(f"cert_part_{engine}")
        part_run.run("fs_rp", strategies[:1])  # "killed" after 1
        resume_run, _ = certify("ignored", ck=ck_res)
        cert_resumed = resume_run.run("fs_rp", strategies)

        with open(ck_full, "rb") as a, open(ck_res, "rb") as b:
            assert a.read() == b.read()
        artifacts = []
        for cert in (cert_full, cert_resumed):
            buf = io.StringIO()
            write_certificate_jsonl(cert, buf)
            artifacts.append(buf.getvalue())
        assert artifacts[0] == artifacts[1]
        assert cert_resumed.verdicts == cert_full.verdicts

    def test_bench_resume_preserves_completed_cases(self, tmp_path):
        """Bench metrics are wall-clock throughputs (noisy by nature),
        so the resume property is: carried-over cases survive verbatim
        (proving the skip), the suite order and metric names match, and
        the one deterministic metric is value-identical."""
        from repro import bench

        scale = dict(accesses=40, cores=2, seed=3)
        ck_full = str(tmp_path / "bench_full.json")
        metrics_full = bench.run_suite(checkpoint=ck_full, **scale)

        with open(ck_full) as handle:
            data = json.load(handle)
        carried = dict(list(data["cases"].items())[:2])
        ck_res = str(tmp_path / "bench_part.json")
        CheckpointStore(
            ck_res, bench.CHECKPOINT_VERSION,
            batch_key=data["batch_key"],
        ).save({"cases": carried})

        metrics_resumed = bench.run_suite(checkpoint=ck_res, **scale)
        with open(ck_res) as handle:
            final = json.load(handle)
        for key, value in carried.items():
            assert final["cases"][key] == value  # not re-run
        assert [m.name for m in metrics_resumed] == \
            [m.name for m in metrics_full]
        deterministic = "template_cache_hit_rate"
        assert {m.name: m.value for m in metrics_resumed}[
            deterministic
        ] == {m.name: m.value for m in metrics_full}[deterministic]


# ----------------------------------------------------------------------
# Corrupt checkpoints and the --fresh escape hatch, per consumer.
# ----------------------------------------------------------------------

def _write_corrupt(tmp_path):
    path = str(tmp_path / "corrupt.json")
    with open(path, "w") as handle:
        handle.write('{"version": 1, "points": [{"sch')
    return path


class TestCorruptCheckpoints:
    def test_sweep_refuses_corrupt_checkpoint(self, tmp_path):
        from repro.sim.config import SystemConfig
        from repro.sim.sweep import Sweep

        path = _write_corrupt(tmp_path)
        config = SystemConfig(num_cores=2, accesses_per_core=40)
        with pytest.raises(ExecError, match="cannot be parsed"):
            Sweep(config, checkpoint=path)
        sweep = Sweep(config, checkpoint=path, fresh=True)
        assert sweep.points == []

    def test_certify_refuses_corrupt_checkpoint(self, tmp_path):
        from repro.certify import CertificationRun, generate_strategies
        from repro.sim.config import SystemConfig

        path = _write_corrupt(tmp_path)
        run = CertificationRun(
            config=SystemConfig(num_cores=4, accesses_per_core=60),
            checkpoint=path,
        )
        strategies = generate_strategies(1, seed=1)
        with pytest.raises(ExecError, match="cannot be parsed"):
            run.run("fs_rp", strategies)

    def test_bench_refuses_corrupt_checkpoint(self, tmp_path):
        from repro import bench

        path = _write_corrupt(tmp_path)
        with pytest.raises(ExecError, match="cannot be parsed"):
            bench.run_suite(
                accesses=40, cores=2, seed=3, checkpoint=path
            )

    def test_incompatible_version_still_silently_fresh(self, tmp_path):
        """The old contract survives the refactor: a checkpoint written
        by a *different schema* (not corrupt) is discarded silently."""
        from repro.sim.config import SystemConfig
        from repro.sim.sweep import Sweep

        path = str(tmp_path / "old.json")
        with open(path, "w") as handle:
            json.dump({"version": -1, "points": []}, handle)
        sweep = Sweep(
            SystemConfig(num_cores=2, accesses_per_core=40),
            checkpoint=path,
        )
        assert sweep.points == []


# ----------------------------------------------------------------------
# Compatibility shims and CLI validation.
# ----------------------------------------------------------------------

class TestCompatAndCli:
    def test_sim_sweep_worker_pool_is_deprecated_reexport(self):
        from repro.sim import sweep as sweep_mod

        with pytest.warns(DeprecationWarning, match="repro.exec"):
            pool = sweep_mod.worker_pool(1)
        pool.shutdown(wait=False)

    def test_exec_error_exported_at_package_root(self):
        import repro

        assert repro.ExecError is ExecError
        assert issubclass(ExecError, ReproError)

    @pytest.mark.parametrize("argv", [
        ["sweep", "--workers", "0"],
        ["sweep", "--workers", "two"],
        ["sweep", "--wall-budget", "-1"],
        ["certify", "--workers", "-3"],
        ["certify", "--budget", "nope"],
        ["bench", "record", "--workers", "1.5"],
        ["bench", "compare", "a", "b", "--tolerance", "-0.1"],
    ])
    def test_cli_rejects_bad_numbers_with_exit_2(self, argv, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as err:
            main(argv)
        assert err.value.code == 2
        assert "expected a" in capsys.readouterr().err

    def test_cli_accepts_fresh_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["sweep", "--fresh"]).fresh
        assert parser.parse_args(["certify", "--fresh"]).fresh
        args = parser.parse_args(
            ["bench", "record", "--workers", "2", "--fresh"]
        )
        assert args.fresh and args.workers == 2


# ----------------------------------------------------------------------
# Import layering (the AST twin of the CI grep gate).
# ----------------------------------------------------------------------

def _imports(path):
    """Every module name a file imports (absolute form)."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    package = os.path.relpath(
        os.path.dirname(path), os.path.dirname(SRC_ROOT)
    ).replace(os.sep, ".")
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.extend(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative: resolve against the package
                parts = package.split(".")
                base = ".".join(parts[:len(parts) - node.level + 1])
                module = (
                    f"{base}.{node.module}" if node.module else base
                )
            else:
                module = node.module or ""
            out.append(module)
            out.extend(
                f"{module}.{alias.name}" for alias in node.names
            )
    return out


def _package_files(package):
    root = os.path.join(SRC_ROOT, package)
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


class TestImportLayering:
    def test_exec_imports_no_consumer(self):
        forbidden = ("repro.sim", "repro.certify", "repro.bench",
                     "repro.store")
        for path in _package_files("exec"):
            for module in _imports(path):
                assert not module.startswith(forbidden), (
                    f"{path} imports {module}: repro.exec must not "
                    f"import its consumers"
                )

    def test_certify_never_imports_sim_sweep(self):
        for path in _package_files("certify"):
            for module in _imports(path):
                assert not module.startswith("repro.sim.sweep"), (
                    f"{path} imports {module}: certification must "
                    f"run on repro.exec, not the sweep executor"
                )
