"""Unit tests for the independent JEDEC timing checker.

Each rule is exercised with a minimal violating stream and its legal
counterpart; the checker must flag exactly the former.
"""

import pytest

from repro.dram.checker import TimingChecker
from repro.dram.commands import Command, CommandType
from repro.dram.timing import DDR3_1600_X4

P = DDR3_1600_X4


@pytest.fixture
def checker():
    return TimingChecker(P)


def act(cycle, rank=0, bank=0, row=1):
    return Command(CommandType.ACTIVATE, cycle, 0, rank, bank, row)


def rd(cycle, rank=0, bank=0, row=1):
    return Command(CommandType.COL_READ_AP, cycle, 0, rank, bank, row)


def wr(cycle, rank=0, bank=0, row=1):
    return Command(CommandType.COL_WRITE_AP, cycle, 0, rank, bank, row)


def rules(violations):
    return {v.rule for v in violations}


class TestCommandBus:
    def test_flags_same_cycle_commands(self, checker):
        v = checker.check([act(10, rank=0), act(10, rank=1)])
        assert "command-bus" in rules(v)

    def test_accepts_distinct_cycles(self, checker):
        assert checker.check([act(10, rank=0), act(11, rank=1)]) == []


class TestDataBus:
    def test_flags_cross_rank_overlap(self, checker):
        cmds = [
            act(0, rank=0), act(1, rank=1),
            rd(P.tRCD, rank=0),
            # Data would start tBURST later: misses the tRTRS bubble.
            rd(P.tRCD + P.tBURST, rank=1),
        ]
        assert "data-bus" in rules(checker.check(cmds))

    def test_accepts_trtrs_gap(self, checker):
        cmds = [
            act(0, rank=0), act(1, rank=1),
            rd(P.tRCD, rank=0),
            rd(P.tRCD + P.tBURST + P.tRTRS, rank=1),
        ]
        assert checker.check(cmds) == []


class TestBankRules:
    def test_flags_trc(self, checker):
        v = checker.check([
            act(0), rd(P.tRCD), act(P.tRC - 1, row=2),
        ])
        assert "tRC" in rules(v)

    def test_flags_trcd(self, checker):
        v = checker.check([act(0), rd(P.tRCD - 1)])
        assert "tRCD" in rules(v)

    def test_flags_column_without_activate(self, checker):
        assert "no-activate" in rules(checker.check([rd(50)]))

    def test_flags_auto_precharge_turnaround(self, checker):
        # A write's auto-precharge completes 43 cycles after the ACT;
        # re-activating earlier is illegal.
        v = checker.check([
            act(0), wr(P.tRCD), act(P.write_turnaround_same_bank - 1,
                                    row=2),
        ])
        assert "tRP(auto)" in rules(v) or "tRC" in rules(v)

    def test_accepts_write_turnaround(self, checker):
        cmds = [
            act(0), wr(P.tRCD),
            act(P.write_turnaround_same_bank, row=2),
            rd(P.write_turnaround_same_bank + P.tRCD, row=2),
        ]
        assert checker.check(cmds) == []


class TestRankRules:
    def test_flags_trrd(self, checker):
        v = checker.check([act(0, bank=0), act(P.tRRD - 1, bank=1)])
        assert "tRRD" in rules(v)

    def test_flags_tfaw(self, checker):
        cmds = [act(i * P.tRRD, bank=i) for i in range(4)]
        cmds.append(act(P.tFAW - 1, bank=4))
        assert "tFAW" in rules(checker.check(cmds))

    def test_accepts_tfaw_boundary(self, checker):
        cmds = [act(i * 6, bank=i) for i in range(4)]
        cmds.append(act(P.tFAW, bank=4))
        assert checker.check(cmds) == []

    def test_flags_tccd(self, checker):
        cmds = [
            act(0, bank=0), act(P.tRRD, bank=1),
            rd(P.tRRD + P.tRCD, bank=1),
            rd(P.tRRD + P.tRCD + P.tCCD - 1, bank=0),
        ]
        assert "tCCD" in rules(checker.check(cmds))

    def test_flags_write_to_read(self, checker):
        cmds = [
            act(0, bank=0), act(P.tRRD, bank=1),
            wr(P.tRCD, bank=0),
            rd(P.tRCD + P.write_to_read - 1, bank=1),
        ]
        assert "wr->rd(tWTR)" in rules(checker.check(cmds))

    def test_flags_read_to_write(self, checker):
        cmds = [
            act(0, bank=0), act(P.tRRD, bank=1),
            rd(P.tRCD, bank=0),
            wr(P.tRCD + P.read_to_write - 1, bank=1),
        ]
        assert "rd->wr" in rules(checker.check(cmds))

    def test_different_ranks_exempt_from_rank_rules(self, checker):
        cmds = [
            act(0, rank=0), act(1, rank=1),
            rd(P.tRCD, rank=0),
            rd(P.tRCD + P.tBURST + P.tRTRS, rank=1),
        ]
        assert checker.check(cmds) == []


class TestRefreshRules:
    def test_flags_command_during_refresh(self, checker):
        cmds = [
            Command(CommandType.REFRESH, 0, 0, 0),
            act(P.tRFC - 1),
        ]
        assert "tRFC" in rules(checker.check(cmds))

    def test_accepts_command_after_refresh(self, checker):
        cmds = [
            Command(CommandType.REFRESH, 0, 0, 0),
            act(P.tRFC),
            rd(P.tRFC + P.tRCD),
        ]
        assert checker.check(cmds) == []


class TestFigure1Stream:
    """The paper's Figure 1 pipeline, transcribed, must be legal."""

    def test_eight_rank_pipeline(self, checker):
        cmds = []
        # Six reads and two writes to ranks 0-7, data every 7 cycles.
        types = [True, True, True, True, True, False, False, True]
        base = 100
        for k, is_read in enumerate(types):
            data = base + 7 * k
            if is_read:
                cmds.append(act(data - 22, rank=k))
                cmds.append(rd(data - 11, rank=k))
            else:
                cmds.append(act(data - 16, rank=k))
                cmds.append(wr(data - 5, rank=k))
        assert checker.check(cmds) == []

    def test_figure1_with_six_cycle_gap_fails(self, checker):
        # The paper notes l = 6 creates a command-bus conflict.
        cmds = []
        types = [True, False] * 4
        base = 100
        for k, is_read in enumerate(types):
            data = base + 6 * k
            if is_read:
                cmds.append(act(data - 22, rank=k))
                cmds.append(rd(data - 11, rank=k))
            else:
                cmds.append(act(data - 16, rank=k))
                cmds.append(wr(data - 5, rank=k))
        assert checker.check(cmds) != []
