"""Whole-stack cross-validation under randomized conditions.

The strongest correctness argument this repository makes is that two
*independent* implementations agree: the schedulers (which construct
command times from resource state or solved timetables) and the JEDEC
checker (which re-derives every pairwise constraint from the raw
parameters).  These property tests randomize workloads, schemes and even
timing parameters and require the two to keep agreeing.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.fs_controller import FixedServiceController
from repro.core.pipeline_solver import (
    PeriodicMode,
    PipelineSolver,
    SharingLevel,
)
from repro.core.schedule import build_fs_schedule, validate_schedule
from repro.dram.checker import TimingChecker
from repro.dram.commands import OpType, Request
from repro.dram.system import DramSystem
from repro.dram.timing import DDR3_1600_X4, TimingParams
from repro.mapping.address import Geometry
from repro.mapping.partition import RankPartition

P = DDR3_1600_X4
G = Geometry()


def drive_controller(ctrl, requests):
    requests = sorted(requests, key=lambda r: (r.arrival, r.req_id))
    clock, idx = 0, 0
    while idx < len(requests) or ctrl.busy():
        nxt = ctrl.next_event()
        arr = requests[idx].arrival if idx < len(requests) else None
        cands = [c for c in (nxt, arr) if c is not None]
        if not cands:
            break
        clock = max(clock + 1, min(cands))
        while idx < len(requests) and requests[idx].arrival <= clock:
            ctrl.enqueue(requests[idx])
            idx += 1
        ctrl.advance(clock)
    return clock


class TestRandomizedFsRuns:
    @given(
        seed=st.integers(0, 10_000),
        domains=st.sampled_from([2, 3, 4, 5, 8]),
        read_frac=st.floats(0.2, 0.95),
        spacing=st.integers(1, 20),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fs_rp_always_jedec_clean(self, seed, domains, read_frac,
                                      spacing):
        """Any request mix, any (small) domain count: the FS command
        stream must satisfy every JEDEC constraint — including the
        Section 7 small-N same-rank hazards the controller must dodge."""
        geometry = Geometry(ranks=max(domains, 8))
        dram = DramSystem(P, ranks_per_channel=geometry.ranks)
        partition = RankPartition(geometry, domains)
        schedule = build_fs_schedule(P, domains, SharingLevel.RANK)
        ctrl = FixedServiceController(
            dram, schedule, partition, log_commands=True
        )
        rng = random.Random(seed)
        requests, t = [], 0
        for _ in range(150):
            d = rng.randrange(domains)
            line = rng.randrange(60_000)
            op = OpType.READ if rng.random() < read_frac else OpType.WRITE
            requests.append(Request(
                op=op, address=partition.decode(d, line), domain=d,
                arrival=t, line=line,
            ))
            t += rng.randrange(0, spacing)
        drive_controller(ctrl, requests)
        assert TimingChecker(P).check(ctrl.command_log) == []


class TestRandomizedTimingParameters:
    @st.composite
    def params(draw):
        tRCD = draw(st.integers(6, 14))
        tCAS = draw(st.integers(6, 14))
        tCWD = draw(st.integers(3, min(tCAS, 9)))
        tBURST = draw(st.integers(2, 6))
        tRAS = draw(st.integers(16, 32))
        tRP = draw(st.integers(6, 14))
        return TimingParams(
            tRCD=tRCD, tCAS=tCAS, tCWD=tCWD, tBURST=tBURST,
            tRAS=tRAS, tRP=tRP, tRC=tRAS + tRP,
            tRRD=draw(st.integers(3, 7)),
            tFAW=draw(st.integers(16, 36)),
            tWR=draw(st.integers(6, 14)),
            tWTR=draw(st.integers(3, 9)),
            tRTP=draw(st.integers(3, 9)),
            tCCD=max(2, tBURST),
            tRTRS=draw(st.integers(1, 3)),
        )

    @given(params=params(), domains=st.sampled_from([4, 8]))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_solved_schedules_validate_for_any_part(self, params,
                                                    domains):
        """For ANY consistent DDR3-like part, the solver's timetable must
        pass the independent checker for every sharing level."""
        for sharing in SharingLevel:
            schedule = build_fs_schedule(params, domains, sharing)
            assert validate_schedule(schedule) == [], (
                f"{sharing}: l={schedule.slot_gap} params={params}"
            )

    @given(params=params())
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fs_controller_clean_on_foreign_part(self, params):
        """The full controller (hazard tracking included) must stay
        JEDEC-clean on parts it was never tuned for."""
        dram = DramSystem(params)
        partition = RankPartition(G, 8)
        schedule = build_fs_schedule(params, 8, SharingLevel.RANK)
        ctrl = FixedServiceController(
            dram, schedule, partition, log_commands=True
        )
        rng = random.Random(1)
        requests, t = [], 0
        for _ in range(100):
            d = rng.randrange(8)
            line = rng.randrange(40_000)
            op = OpType.READ if rng.random() < 0.7 else OpType.WRITE
            requests.append(Request(
                op=op, address=partition.decode(d, line), domain=d,
                arrival=t, line=line,
            ))
            t += rng.randrange(0, 6)
        drive_controller(ctrl, requests)
        assert TimingChecker(params).check(ctrl.command_log) == []
