"""The FS framework on DDR4: generality of the offline solver."""

import pytest

from repro.core.pipeline_solver import (
    PeriodicMode,
    PipelineSolver,
    SharingLevel,
)
from repro.core.schedule import (
    build_fs_schedule,
    build_triple_alternation_schedule,
    validate_schedule,
)
from repro.dram.timing import DDR4_2400


@pytest.fixture(scope="module")
def solver():
    return PipelineSolver(DDR4_2400)


class TestDdr4Pipelines:
    def test_all_sharing_levels_solve(self, solver):
        for sharing in SharingLevel:
            for mode in PeriodicMode:
                l = solver.solve(mode, sharing)
                assert l >= DDR4_2400.tBURST
                assert solver.check(l, mode, sharing) is None

    def test_monotone_over_sharing(self, solver):
        for mode in PeriodicMode:
            assert (
                solver.solve(mode, SharingLevel.RANK)
                <= solver.solve(mode, SharingLevel.BANK)
                <= solver.solve(mode, SharingLevel.NONE)
            )

    def test_schedules_validate(self):
        for sharing in SharingLevel:
            schedule = build_fs_schedule(DDR4_2400, 8, sharing)
            assert validate_schedule(schedule) == [], sharing

    def test_triple_alternation_when_safe(self):
        solver = PipelineSolver(DDR4_2400)
        l_bp = solver.solve(PeriodicMode.RAS, SharingLevel.BANK)
        if 3 * l_bp >= solver.same_bank_min_gap():
            ta = build_triple_alternation_schedule(DDR4_2400, 8)
            assert validate_schedule(ta) == []
        else:
            with pytest.raises(RuntimeError, match="unsafe"):
                build_triple_alternation_schedule(DDR4_2400, 8)

    def test_rank_partitioned_controller_runs_clean(self):
        import random

        from repro.core.fs_controller import FixedServiceController
        from repro.dram.checker import TimingChecker
        from repro.dram.commands import OpType, Request
        from repro.dram.system import DramSystem
        from repro.mapping.address import Geometry
        from repro.mapping.partition import RankPartition

        dram = DramSystem(DDR4_2400)
        partition = RankPartition(Geometry(), 8)
        schedule = build_fs_schedule(DDR4_2400, 8, SharingLevel.RANK)
        ctrl = FixedServiceController(
            dram, schedule, partition, log_commands=True
        )
        rng = random.Random(4)
        requests, t = [], 0
        for _ in range(200):
            d = rng.randrange(8)
            line = rng.randrange(50_000)
            op = OpType.READ if rng.random() < 0.7 else OpType.WRITE
            requests.append(Request(
                op=op, address=partition.decode(d, line), domain=d,
                arrival=t, line=line,
            ))
            t += rng.randrange(0, 8)
        clock, idx = 0, 0
        while idx < len(requests) or ctrl.busy():
            nxt = ctrl.next_event()
            arr = requests[idx].arrival if idx < len(requests) else None
            cands = [c for c in (nxt, arr) if c is not None]
            if not cands:
                break
            clock = max(clock + 1, min(cands))
            while idx < len(requests) and requests[idx].arrival <= clock:
                ctrl.enqueue(requests[idx])
                idx += 1
            ctrl.advance(clock)
        assert TimingChecker(DDR4_2400).check(ctrl.command_log) == []
