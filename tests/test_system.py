"""Integration tests: full system runs for every scheme."""

import pytest

from repro.dram.checker import TimingChecker
from repro.sim.config import SystemConfig
from repro.sim.runner import (
    SCHEMES,
    SchemeOptions,
    build_system,
    run_scheme,
)
from repro.workloads.spec import suite_specs
from repro.workloads.synthetic import idle_spec, intense_spec

CFG = SystemConfig(accesses_per_core=300)


@pytest.fixture(scope="module")
def baseline_result():
    return run_scheme("baseline", CFG, suite_specs("milc", 8))


class TestAllSchemesComplete:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_runs_to_completion(self, scheme):
        result = run_scheme(scheme, CFG, suite_specs("milc", 8),
                            max_cycles=3_000_000)
        assert all(c.done for c in result.cores), scheme
        assert result.total_reads > 0

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_commands_legal(self, scheme):
        options = SchemeOptions(log_commands=True)
        system = build_system(scheme, CFG, suite_specs("milc", 8), options)
        system.run(max_cycles=3_000_000)
        violations = TimingChecker(CFG.timing).check(
            system.controller.command_log
        )
        assert violations == [], f"{scheme}: {violations[:3]}"


class TestPerformanceOrdering:
    """The qualitative orderings the paper's Figure 3 depends on."""

    @pytest.fixture(scope="class")
    def results(self):
        specs = suite_specs("milc", 8)
        return {
            scheme: run_scheme(scheme, CFG, specs, max_cycles=5_000_000)
            for scheme in (
                "baseline", "fs_rp", "fs_reordered_bp", "fs_bp",
                "tp_bp", "fs_np_ta", "tp_np",
            )
        }

    def test_baseline_weighted_ipc_is_core_count(self, results):
        base = results["baseline"]
        assert base.weighted_ipc(base) == pytest.approx(8.0)

    def test_baseline_fastest(self, results):
        base = results["baseline"]
        for scheme, result in results.items():
            if scheme != "baseline":
                assert result.weighted_ipc(base) < 8.0, scheme

    def test_fs_rp_beats_tp_bp(self, results):
        base = results["baseline"]
        assert results["fs_rp"].weighted_ipc(base) > \
            results["tp_bp"].weighted_ipc(base)

    def test_fs_reordered_beats_fs_bp(self, results):
        base = results["baseline"]
        assert results["fs_reordered_bp"].weighted_ipc(base) > \
            results["fs_bp"].weighted_ipc(base)

    def test_triple_alternation_beats_tp_np_when_latency_bound(self):
        """The paper's 2x claim for triple alternation comes from its
        latency advantage (a slot every 120 cycles vs a turn every 1376);
        it shows on latency-sensitive workloads.  (On bandwidth-saturated
        rate-mode streams our ROB-limited cores cannot cover all three
        bank classes, a documented deviation — see EXPERIMENTS.md.)"""
        specs = suite_specs("xalancbmk", 8)
        base = run_scheme("baseline", CFG, specs, max_cycles=5_000_000)
        ta = run_scheme("fs_np_ta", CFG, specs, max_cycles=5_000_000)
        tp = run_scheme("tp_np", CFG, specs, max_cycles=5_000_000)
        assert ta.weighted_ipc(base) > 1.5 * tp.weighted_ipc(base)

    def test_energy_positive_everywhere(self, results):
        for scheme, result in results.items():
            assert result.energy.total_pj > 0, scheme


class TestShapingUnderLoad:
    def test_fs_dummy_fraction_tracks_intensity(self):
        quiet = run_scheme("fs_rp", CFG, [idle_spec()] * 8,
                           max_cycles=2_000_000)
        loud = run_scheme("fs_rp", CFG, [intense_spec()] * 8,
                          max_cycles=2_000_000)
        assert quiet.stats.dummy_fraction > 0.7
        assert loud.stats.dummy_fraction < 0.3

    def test_fs_bus_utilization_capped_at_peak(self):
        result = run_scheme("fs_rp", CFG, [intense_spec()] * 8,
                            max_cycles=2_000_000)
        assert result.bus_utilization <= 4 / 7 + 0.01


class TestRunnerValidation:
    def test_spec_count_must_match_cores(self):
        with pytest.raises(ValueError):
            build_system("baseline", CFG, suite_specs("milc", 4))

    def test_unknown_scheme(self):
        from repro.sim.runner import build_controller, partition_for

        with pytest.raises(ValueError):
            build_controller(
                "warp-drive", CFG, partition_for("baseline", CFG),
                SchemeOptions(),
            )

    def test_with_cores_scales_ranks(self):
        cfg4 = CFG.with_cores(4)
        assert cfg4.num_cores == 4
        assert cfg4.geometry.ranks == 4


class TestPrefetchIntegration:
    def test_fs_rp_prefetch_runs_and_prefetches(self):
        # zeusmp: streaming enough for the sandbox to activate, light
        # enough that FS has dummy slots for prefetches to ride in.
        specs = suite_specs("zeusmp", 8)
        options = SchemeOptions(prefetch=True)
        result = run_scheme("fs_rp", CFG, specs, options,
                            max_cycles=3_000_000)
        assert all(c.done for c in result.cores)
        assert result.stats.prefetches > 0

    def test_prefetch_helps_streaming_workload(self):
        specs = suite_specs("zeusmp", 8)
        plain = run_scheme("fs_rp", CFG, specs, max_cycles=3_000_000)
        pf = run_scheme("fs_rp", CFG, specs, SchemeOptions(prefetch=True),
                        max_cycles=3_000_000)
        assert pf.cycles <= plain.cycles * 1.05
