"""Documentation hygiene: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.dram", "repro.core", "repro.controllers",
    "repro.cpu", "repro.workloads", "repro.cache", "repro.mapping",
    "repro.prefetch", "repro.sim", "repro.analysis",
]


def iter_modules():
    for name in PACKAGES:
        module = importlib.import_module(name)
        yield module
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                yield importlib.import_module(f"{name}.{info.name}")


def public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in dir(module) if not n.startswith("_")]
    for name in names:
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", "").startswith("repro"):
                yield name, member


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in iter_modules() if not m.__doc__
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, member in public_members(module):
                if not inspect.getdoc(member):
                    undocumented.append(f"{module.__name__}.{name}")
        assert sorted(set(undocumented)) == []

    def test_public_methods_documented(self):
        """Public methods of the flagship classes need docstrings too."""
        from repro.controllers.base import MemoryController
        from repro.core.fs_controller import FixedServiceController
        from repro.core.pipeline_solver import PipelineSolver
        from repro.cpu.core_model import Core

        undocumented = []
        for cls in (MemoryController, FixedServiceController,
                    PipelineSolver, Core):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not \
                        inspect.getdoc(member):
                    undocumented.append(f"{cls.__name__}.{name}")
        assert undocumented == []

    def test_top_level_exports_resolve_and_documented(self):
        for name in repro.__all__:
            member = getattr(repro, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                assert inspect.getdoc(member), name
