"""Documentation hygiene: docstrings everywhere, and docs/ stays wired.

Two layers of checks:

* every public module/class/function in PACKAGES carries a docstring;
* the per-subsystem pages under ``docs/`` form a closed graph — every
  relative link resolves, and every package under ``src/repro/`` has a
  home page in ``docs/index.md``.
"""

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

import repro

PACKAGES = [
    "repro", "repro.dram", "repro.core", "repro.controllers",
    "repro.cpu", "repro.workloads", "repro.cache", "repro.mapping",
    "repro.prefetch", "repro.sim", "repro.analysis",
    "repro.exec", "repro.telemetry", "repro.schemes", "repro.certify",
    "repro.bench", "repro.store",
]

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
SRC_ROOT = REPO_ROOT / "src" / "repro"

_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_modules():
    for name in PACKAGES:
        module = importlib.import_module(name)
        yield module
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                yield importlib.import_module(f"{name}.{info.name}")


def public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in dir(module) if not n.startswith("_")]
    for name in names:
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", "").startswith("repro"):
                yield name, member


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in iter_modules() if not m.__doc__
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, member in public_members(module):
                if not inspect.getdoc(member):
                    undocumented.append(f"{module.__name__}.{name}")
        assert sorted(set(undocumented)) == []

    def test_public_methods_documented(self):
        """Public methods of the flagship classes need docstrings too."""
        from repro.controllers.base import MemoryController
        from repro.core.fs_controller import FixedServiceController
        from repro.core.pipeline_solver import PipelineSolver
        from repro.cpu.core_model import Core

        undocumented = []
        for cls in (MemoryController, FixedServiceController,
                    PipelineSolver, Core):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not \
                        inspect.getdoc(member):
                    undocumented.append(f"{cls.__name__}.{name}")
        assert undocumented == []

    def test_top_level_exports_resolve_and_documented(self):
        for name in repro.__all__:
            member = getattr(repro, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                assert inspect.getdoc(member), name


class TestDocsPages:
    """The split docs/ tree stays internally consistent."""

    def docs_pages(self):
        pages = sorted(DOCS_DIR.glob("*.md"))
        assert pages, "docs/ has no markdown pages"
        return pages

    def test_relative_links_resolve(self):
        """Every relative link in every docs page points at a real file."""
        broken = []
        for page in self.docs_pages():
            for target in _MD_LINK.findall(page.read_text()):
                if "://" in target or target.startswith("#"):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                if not (page.parent / path).exists():
                    broken.append(f"{page.name} -> {target}")
        assert broken == []

    def test_index_links_every_page(self):
        """docs/index.md references every sibling page (no orphans)."""
        index = (DOCS_DIR / "index.md").read_text()
        missing = [
            page.name for page in self.docs_pages()
            if page.name != "index.md" and f"({page.name})" not in index
        ]
        assert missing == []

    def test_every_package_has_a_doc_home(self):
        """Every src/repro/<pkg> package appears in the docs/index.md map."""
        index = (DOCS_DIR / "index.md").read_text()
        missing = []
        for init in sorted(SRC_ROOT.glob("*/__init__.py")):
            pkg = f"repro.{init.parent.name}"
            if f"`{pkg}`" not in index:
                missing.append(pkg)
        assert missing == []
