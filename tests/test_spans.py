"""Hierarchical span tracing (the Run Observatory tentpole).

Pinned properties:

* the tracer builds a well-formed tree (nesting enforced, parent/seq
  links consistent) on deterministic clocks only;
* both engines emit byte-identical span records for the same run, and
  arming a tracer changes no simulated observable (inertness);
* the Chrome export is canonical: stable ordering, volatile ``wall_*``
  args stripped by :func:`scrub_volatile_args`, one serialization;
* the HTML run report renders every section and stays self-contained.
"""

import io
import json

import pytest

from repro.errors import TelemetryError
from repro.sim.config import SystemConfig
from repro.sim.runner import SchemeOptions, run_scheme
from repro.telemetry import (
    EPOCH_CYCLES,
    SpanRecord,
    SpanTracer,
    TelemetrySession,
    export_span_trace,
    chrome_trace_dict,
    render_report,
    scrub_volatile_args,
    spans_to_events,
    write_trace_dict,
)
from repro.workloads.spec import suite_specs


# ---------------------------------------------------------------------
# Tracer unit behaviour.
# ---------------------------------------------------------------------


def test_begin_end_builds_tree():
    tracer = SpanTracer(track="t")
    outer = tracer.begin("outer", "run")
    inner = tracer.begin("inner", "phase")
    tracer.end(inner)
    tracer.end(outer)
    # Records land in completion order (innermost first).
    assert [r.name for r in tracer.records] == ["inner", "outer"]
    by_name = {r.name: r for r in tracer.records}
    assert by_name["inner"].parent == by_name["outer"].seq
    assert by_name["outer"].parent == -1
    assert by_name["inner"].depth == 1
    assert by_name["outer"].depth == 0
    # Logical clock: begin/end each tick, so extents nest strictly.
    assert by_name["outer"].start < by_name["inner"].start
    assert by_name["inner"].end < by_name["outer"].end


def test_end_out_of_order_raises():
    tracer = SpanTracer()
    outer = tracer.begin("outer", "run")
    tracer.begin("inner", "phase")
    with pytest.raises(TelemetryError, match="out of order"):
        tracer.end(outer)


def test_span_context_manager_and_args_merge():
    tracer = SpanTracer()
    with tracer.span("work", "cell", args={"k": 1}):
        pass
    seq = tracer.begin("more", "cell", args={"a": 1})
    tracer.end(seq, args={"b": 2})
    assert tracer.records[0].args == {"k": 1}
    assert tracer.records[1].args == {"a": 1, "b": 2}


def test_complete_attaches_to_innermost_open():
    tracer = SpanTracer()
    outer = tracer.begin("outer", "run", start=0)
    tracer.complete("slice", "epoch", 0, 10)
    tracer.end(outer, end=10)
    slice_rec = next(r for r in tracer.records if r.name == "slice")
    assert slice_rec.parent == 0 and slice_rec.depth == 1
    assert (slice_rec.start, slice_rec.end) == (0, 10)


def test_adopt_retracks_and_accepts_raw_tuples():
    child = SpanTracer(track="child")
    with child.span("cell", "cell"):
        pass
    parent = SpanTracer(track="grid")
    # A spawn worker ships plain tuples; adopt must rebuild records.
    shipped = [tuple(r) for r in child.records]
    count = parent.adopt(shipped, track="grid cell 0")
    assert count == 1
    assert parent.records[0].track == "grid cell 0"
    assert parent.records[0].name == "cell"
    assert isinstance(parent.records[0], SpanRecord)


def test_record_engine_run_epoch_math():
    tracer = SpanTracer()
    cycles = 2 * EPOCH_CYCLES + 17
    tracer.record_engine_run(
        "fs_rp", "fast", cycles, wall_seconds=0.5
    )
    epochs = [r for r in tracer.records if r.category == "epoch"]
    assert len(epochs) == 3
    assert epochs[0].start == 0 and epochs[0].end == EPOCH_CYCLES
    assert epochs[-1].end == cycles
    run = next(r for r in tracer.records if r.category == "run")
    assert (run.start, run.end) == (0, cycles)
    assert run.args["engine"] == "fast"
    assert run.args["wall_s"] == 0.5
    phases = [r.name for r in tracer.records if r.category == "phase"]
    assert phases == ["main-loop", "finalize"]


def test_summary_aggregates_deterministically():
    tracer = SpanTracer()
    tracer.record_engine_run("fs_rp", "fast", EPOCH_CYCLES * 2)
    summary = tracer.summary()
    keys = [(e["category"], e["name"]) for e in summary]
    assert keys == sorted(keys)
    epoch_rows = [e for e in summary if e["category"] == "epoch"]
    assert sum(e["count"] for e in epoch_rows) == 2
    assert all(e["total"] >= e["max"] for e in summary)


# ---------------------------------------------------------------------
# Export canonicalization.
# ---------------------------------------------------------------------


def test_spans_to_events_and_scrub():
    tracer = SpanTracer(track="grid")
    seq = tracer.begin("cell", "cell", args={"wall_s": 1.25, "k": 3})
    tracer.end(seq)
    events = spans_to_events(tracer.records)
    assert events[0].pid == "spans" and events[0].tid == "grid"
    assert events[0].ph == "X"
    payload = chrome_trace_dict(events)
    scrubbed = scrub_volatile_args(payload)
    raw_args = [e.get("args", {}) for e in payload["traceEvents"]
                if e.get("name") == "cell"]
    clean_args = [e.get("args", {}) for e in scrubbed["traceEvents"]
                  if e.get("name") == "cell"]
    assert any("wall_s" in a for a in raw_args)  # export keeps it
    assert all("wall_s" not in a for a in clean_args)
    assert all(a.get("k") == 3 for a in clean_args)
    # scrub deep-copies: the input payload is untouched.
    assert any("wall_s" in a for a in raw_args)


def test_write_trace_dict_is_canonical():
    tracer = SpanTracer()
    with tracer.span("a", "cell"):
        pass
    first, second = io.StringIO(), io.StringIO()
    export_span_trace(tracer, first)
    export_span_trace(tracer, second, metadata={"z": 1, "a": 2})
    assert first.getvalue().endswith("\n")
    body = json.loads(first.getvalue())
    assert body["traceEvents"]
    # sort_keys + compact separators: re-serializing reproduces bytes.
    assert json.dumps(
        body, sort_keys=True, separators=(",", ":")
    ) + "\n" == first.getvalue()
    other = json.loads(second.getvalue())["otherData"]
    assert other["z"] == 1 and other["a"] == 2


def test_write_trace_dict_bad_path_is_friendly(tmp_path):
    with pytest.raises(TelemetryError):
        write_trace_dict({"traceEvents": []},
                         "/nonexistent-dir/out.json")


# ---------------------------------------------------------------------
# Engine integration: determinism and inertness.
# ---------------------------------------------------------------------


def _engine_spans(engine, scheme="fs_rp"):
    tracer = SpanTracer()
    session = TelemetrySession(tracer=tracer)
    config = SystemConfig(accesses_per_core=60).with_cores(2)
    result = run_scheme(
        scheme, config, suite_specs("mix1", 2),
        SchemeOptions(telemetry=session), engine=engine,
    )
    return tracer, result


@pytest.mark.parametrize("scheme", ["fs_rp", "baseline"])
def test_engine_spans_identical_across_engines(scheme):
    """Span extents are pure functions of the engine-identical final
    clock; only the ``engine`` tag and volatile ``wall_s`` differ."""
    serialized = {}
    for engine in ("reference", "fast"):
        tracer, _ = _engine_spans(engine, scheme)
        payload = scrub_volatile_args(
            chrome_trace_dict(tracer.to_events())
        )
        for event in payload["traceEvents"]:
            if isinstance(event.get("args"), dict):
                event["args"].pop("engine", None)
        serialized[engine] = json.dumps(payload, sort_keys=True)
    assert serialized["fast"] == serialized["reference"]


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_engine_run_span_covers_clock(engine):
    tracer, result = _engine_spans(engine)
    run = next(r for r in tracer.records if r.category == "run")
    assert run.end == result.cycles
    assert run.args["engine"] == engine
    assert run.args["wall_s"] > 0
    epochs = [r for r in tracer.records if r.category == "epoch"]
    assert epochs[-1].end == result.cycles


# ---------------------------------------------------------------------
# HTML run report.
# ---------------------------------------------------------------------


def test_render_report_all_sections(tmp_path):
    from repro.telemetry import inter_service_histogram, write_report

    tracer, result = _engine_spans("fast")
    session = TelemetrySession(profile=True)
    session.registry.counter("report_demo_total", "demo").inc(3)
    document = render_report(
        "fs_rp — test report",
        registry=session.registry,
        histograms=inter_service_histogram(result.service_trace),
        span_summary=tracer.summary(),
        metadata={"scheme": "fs_rp"},
    )
    assert document.startswith("<!DOCTYPE html>")
    for heading in ("Metrics snapshot", "Inter-service leakage",
                    "Span flamegraph summary"):
        assert heading in document
    assert "http" not in document.split("</title>")[1]  # self-contained
    out = tmp_path / "r.html"
    write_report(str(out), document)
    assert out.read_text() == document


def test_render_report_escapes_html():
    document = render_report(
        "<script>alert(1)</script>",
        metadata={"k": "<img src=x>"},
    )
    assert "<script>alert" not in document
    assert "<img" not in document
    assert "&lt;script&gt;" in document
    assert render_report("empty").count("Nothing to report") == 1
