"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_scheme_and_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "warp", "mcf"])


class TestCommands:
    def test_solve(self, capsys):
        assert main(["solve"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out and "7" in out
        assert "Q=56" in out

    def test_run(self, capsys):
        assert main([
            "run", "fs_rp", "xalancbmk", "--accesses", "80",
        ]) == 0
        out = capsys.readouterr().out
        assert "bus utilization" in out
        assert "dummy fraction" in out

    def test_compare(self, capsys):
        assert main([
            "compare", "xalancbmk", "fs_rp", "--accesses", "80",
        ]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "fs_rp" in out

    def test_audit_fs_passes(self, capsys):
        assert main([
            "audit", "fs_rp", "--workload", "xalancbmk",
            "--accesses", "80",
        ]) == 0
        assert "NON-INTERFERING" in capsys.readouterr().out

    def test_audit_baseline_fails(self, capsys):
        assert main([
            "audit", "baseline", "--workload", "mcf",
            "--accesses", "200",
        ]) == 1
        assert "LEAKS" in capsys.readouterr().out

    def test_covert_fs(self, capsys):
        assert main(["covert", "fs_rp", "--accesses", "80"]) == 0
        assert "bit error rate" in capsys.readouterr().out
