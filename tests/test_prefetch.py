"""Tests for the sandbox prefetcher."""

import pytest

from repro.prefetch.sandbox import SandboxPrefetcher


class TestSandboxActivation:
    def test_streaming_activates_unit_stride(self):
        p = SandboxPrefetcher()
        for line in range(600):
            p.observe(line)
        assert 1 in p.active_offsets

    def test_random_stream_stays_inactive(self):
        import random

        rng = random.Random(1)
        p = SandboxPrefetcher()
        for _ in range(600):
            p.observe(rng.randrange(10**9))
        assert p.active_offsets == []

    def test_stride_two_detected(self):
        p = SandboxPrefetcher()
        for i in range(600):
            p.observe(i * 2)
        assert 2 in p.active_offsets
        assert 1 not in p.active_offsets

    def test_at_most_four_active(self):
        p = SandboxPrefetcher()
        # Dense stream hits many offsets at once.
        for i in range(600):
            p.observe(i)
        assert len(p.active_offsets) <= SandboxPrefetcher.MAX_ACTIVE


class TestCandidateGeneration:
    def test_claim_drains_queue(self):
        p = SandboxPrefetcher()
        for line in range(600):
            p.observe(line)
        got = p.claim_candidates()
        assert got
        assert p.claim_candidates() == []

    def test_candidates_follow_stream(self):
        p = SandboxPrefetcher()
        for line in range(600):
            p.observe(line)
        p.claim_candidates()
        p.observe(1000)
        cands = p.claim_candidates()
        assert any(c > 1000 for c in cands)

    def test_queue_depth_bounded(self):
        p = SandboxPrefetcher()
        for line in range(2000):
            p.observe(line)
        assert len(p.claim_candidates()) <= SandboxPrefetcher.QUEUE_DEPTH

    def test_no_duplicate_prefetches(self):
        p = SandboxPrefetcher()
        for line in range(600):
            p.observe(line)
        p.claim_candidates()
        p.observe(5000)
        p.observe(5000)
        cands = p.claim_candidates()
        assert len(cands) == len(set(cands))


class TestValidation:
    def test_needs_offsets(self):
        with pytest.raises(ValueError):
            SandboxPrefetcher(offsets=())

    def test_counters(self):
        p = SandboxPrefetcher()
        for line in range(300):
            p.observe(line)
        assert p.stat_observed == 300
